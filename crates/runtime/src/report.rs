//! Serving-run reports: deterministic aggregates and their JSON form.
//!
//! Nothing in a [`ServeReport`] depends on wall-clock time or the
//! worker count: throughput is measured in simulated instructions per
//! scheduler round, contention in rounds where a shard was updated by
//! several tenants, queue depths in tenant-rounds. The JSON rendering
//! is hand-rolled with a fixed field order, so equal reports produce
//! byte-identical files.

use crate::policy::{PolicyFeatures, SwitchRecord};
use crate::snapshot::ServeSnapshot;
use rsel_core::metrics::RunReport;

/// Buckets in the log2 admission-wait histogram.
pub const WAIT_BUCKETS: usize = 16;

/// The log2 histogram bucket a wait of `rounds` falls in: bucket 0 is
/// an immediate admission (zero rounds waited), bucket `k >= 1` covers
/// waits in `[2^(k-1), 2^k)`, and the last bucket absorbs everything
/// longer.
pub fn wait_bucket(rounds: u64) -> usize {
    if rounds == 0 {
        0
    } else {
        (64 - rounds.leading_zeros() as usize).min(WAIT_BUCKETS - 1)
    }
}

/// Admission-queue and scheduler statistics for a serving run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Sessions admitted from the queue into the active set.
    pub admissions: u64,
    /// Most sessions ever concurrently active in one round.
    pub peak_active: u64,
    /// Most sessions ever waiting in the admission queue.
    pub peak_queue_depth: u64,
    /// Tenant-rounds spent waiting in the bounded queue.
    pub queued_tenant_rounds: u64,
    /// Tenant-rounds spent deferred *behind* the full queue — the
    /// backpressure the bounded queue exerts on arrivals.
    pub deferred_tenant_rounds: u64,
    /// Arrivals shed under overload: a tenant that waited past the
    /// admission timeout is pushed back out of the pending set and
    /// told to retry after an exponential backoff.
    pub shed_arrivals: u64,
    /// Re-arrivals of previously shed tenants (each shed arrival
    /// retries until admitted, so shedding delays work, never drops
    /// it).
    pub admission_retries: u64,
    /// Quarantined tenants re-admitted with a fresh cold session after
    /// the quarantine penalty elapsed (zero when retries are off).
    pub quarantine_retries: u64,
    /// Log2 histogram of rounds waited from (re)arrival to admission,
    /// one sample per admission: bucket 0 is an immediate admission,
    /// bucket `k >= 1` covers waits in `[2^(k-1), 2^k)` rounds (see
    /// [`wait_bucket`]).
    pub admission_wait_hist: [u64; WAIT_BUCKETS],
}

/// One shard's lifetime statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Peak occupancy observed at any round barrier.
    pub peak_bytes: u64,
    /// Rounds in which two or more tenants updated the shard.
    pub contended_rounds: u64,
    /// Barriers at which the shard exceeded capacity (at most one per
    /// round, however many shed actions resolving the wave took).
    pub pressure_waves: u64,
    /// Individual eviction calls applied while resolving pressure
    /// waves.
    pub shed_actions: u64,
    /// Regions evicted from the shard by pressure.
    pub evicted_regions: u64,
    /// Regions killed in the shard by self-modifying-code writes
    /// (attributed by the entry address of each invalidated region).
    pub smc_invalidated: u64,
    /// Occupancy when the run ended.
    pub final_bytes: u64,
    /// Share mode: peak unique (deduplicated) bytes the shard's store
    /// held at any barrier. Zero with sharing off.
    pub unique_bytes: u64,
    /// Share mode: peak logical bytes (every holder charged) at any
    /// barrier. Zero with sharing off.
    pub logical_bytes: u64,
    /// Share mode: peak refs beyond each entry's first holder — the
    /// region copies dedup avoided storing. Zero with sharing off.
    pub shared_refs: u64,
}

/// One tenant's serving summary.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSummary {
    /// Tenant id (admission order).
    pub tenant: u16,
    /// Workload name.
    pub workload: &'static str,
    /// Selector driving the session when it ended.
    pub final_selector: &'static str,
    /// Epochs the session ran.
    pub epochs: u64,
    /// Selector switches decided by the tenant's policy engine. A
    /// warm-started engine keeps accumulating across the restore, so
    /// this includes switches carried over from the snapshot.
    pub switches: u64,
    /// Whether the tenant was ever admitted into the active set. A
    /// tenant can finish a serve unadmitted only in degenerate setups
    /// (it was quarantined before first admission); `admitted_round`
    /// and `admission_wait` are meaningless when this is `false`.
    pub admitted: bool,
    /// Round the session entered the active set.
    pub admitted_round: u64,
    /// Rounds the tenant waited from first arrival to first admission
    /// (the admission latency the queue and active limit cost it).
    pub admission_wait: u64,
    /// Round the session finished.
    pub finished_round: u64,
    /// First round at which the tenant's policy engine was in the
    /// exploit phase (`None` if it never got there). A warm-started
    /// tenant restored mid-exploit records its first active round.
    pub first_exploit_round: Option<u64>,
    /// Total instructions executed.
    pub total_insts: u64,
    /// Instructions served from the code cache.
    pub cache_insts: u64,
    /// Instructions ever copied into the cache (monotone expansion).
    pub insts_selected: u64,
    /// Regions ever selected (monotone).
    pub regions_selected: u64,
    /// Regions evicted from this tenant by shard pressure.
    pub pressure_evicted: u64,
    /// Regions evicted from this tenant by *utility-aware* pressure
    /// waves (a subset of `pressure_evicted`; zero with the
    /// utility-eviction knob off).
    pub utility_evictions: u64,
    /// Stream-shape features the stream-adaptive policy derived this
    /// tenant's candidate schedule from; `None` under a non-adaptive
    /// base policy.
    pub policy_features: Option<PolicyFeatures>,
    /// Self-modifying-code writes that struck the tenant.
    pub smc_events: u64,
    /// Regions killed by those writes.
    pub smc_invalidated: u64,
    /// Regions re-formed at an entry address that had previously been
    /// invalidated or evicted — the re-selection recovery work.
    pub reformations: u64,
    /// Entry addresses demoted to the blacklist (graceful
    /// degradation: they serve from the interpreter for a cooldown
    /// instead of thrashing the cache).
    pub blacklisted_targets: u64,
    /// Selections dropped because their entry was blacklisted.
    pub blacklist_hits: u64,
    /// Graceful mid-run disconnects the tenant's lifecycle scheduled
    /// (each one checkpoints the session and tears it down).
    pub disconnects: u64,
    /// Re-admissions after a disconnect or crash — the churn the
    /// tenant survived. (Shed arrivals retry but are first
    /// admissions, so they do not count here.)
    pub reconnects: u64,
    /// Mid-run crashes (recovery re-runs everything since the last
    /// checkpoint).
    pub crashes: u64,
    /// Epochs re-executed during crash recovery: work done after the
    /// last checkpoint that the crash threw away.
    pub recovered_epochs: u64,
    /// Per-tenant checkpoints written (periodic and at disconnects).
    pub checkpoints: u64,
    /// Serialized size of the tenant's *last* checkpoint, in bytes
    /// (zero if none was ever taken).
    pub checkpoint_bytes: u64,
    /// Whether the tenant was quarantined: its session panicked or
    /// poisoned a lock, the failure was contained, and the tenant was
    /// taken out of rotation with its partial metrics kept. With
    /// retries enabled this is only set once the retry also failed.
    pub quarantined: bool,
    /// Times the tenant was re-admitted with a fresh cold session
    /// after a quarantine (at most one under the one-retry policy).
    pub quarantine_retries: u64,
    /// Hit-rate dips opened by invalidation waves (see
    /// [`DipTracker`]).
    pub smc_dips: u64,
    /// Deepest hit-rate drop below the pre-dip baseline, absolute.
    pub max_dip_depth: f64,
    /// Longest recovery, in epochs, from a dip back to 95 % of the
    /// pre-dip baseline hit rate.
    pub max_dip_recovery_epochs: u64,
}

impl TenantSummary {
    /// Fraction of the tenant's instructions served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.cache_insts as f64 / self.total_insts as f64
        }
    }
}

/// Everything measured over one serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Steps per epoch.
    pub epoch_len: usize,
    /// Shards in the shared cache map.
    pub shard_count: usize,
    /// Per-shard byte budget.
    pub shard_capacity: u64,
    /// Active-session ceiling.
    pub max_active: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Whether the run was warm-started from a snapshot.
    pub warm_started: bool,
    /// Regions restored into tenant caches before the first round.
    pub warm_regions_restored: u64,
    /// Tenants whose snapshot was rejected by the lenient loader and
    /// who therefore cold-started (always zero under the strict
    /// loader, which fails the whole file instead).
    pub warm_rejected_tenants: u64,
    /// Self-modifying-code write rate the run was served under, in
    /// events per million executed blocks (zero = fault layer inert).
    pub smc_write_ppm: u32,
    /// Base fault seed; each tenant's schedule is derived from it and
    /// the tenant id, so worker count cannot affect any schedule.
    pub fault_seed: u64,
    /// Pressure flush-wave rate the run was served under, in events
    /// per million executed blocks.
    pub flush_wave_ppm: u32,
    /// Counter-fault rate (saturations and resets) the run was served
    /// under, in events per million profile updates.
    pub counter_fault_ppm: u32,
    /// Whether a churn schedule (staggered arrivals, disconnects,
    /// crashes) was active.
    pub churn_active: bool,
    /// Base churn seed; like `fault_seed`, every tenant's lifecycle
    /// derives from it and the tenant id alone.
    pub churn_seed: u64,
    /// Rounds between periodic per-tenant checkpoints (zero =
    /// checkpoint only at graceful disconnects).
    pub checkpoint_every: u64,
    /// Whether the content-addressed region store deduplicated
    /// identical regions across tenants.
    pub share_active: bool,
    /// Share mode: peak total unique bytes the store held at any
    /// barrier, summed over shards. Zero with sharing off.
    pub unique_bytes: u64,
    /// Share mode: total logical bytes at the barrier where the unique
    /// peak was observed (same moment, so the ratio is a real observed
    /// dedup factor). Zero with sharing off.
    pub logical_bytes: u64,
    /// Share mode: peak total refs beyond each entry's first holder.
    /// Zero with sharing off.
    pub shared_refs: u64,
    /// Scheduler and queue statistics.
    pub queue: QueueStats,
    /// Per-tenant summaries, in tenant order.
    pub tenants: Vec<TenantSummary>,
    /// Per-shard statistics, in shard order.
    pub shards: Vec<ShardReport>,
    /// Every selector switch, in decision order.
    pub switches: Vec<SwitchRecord>,
    /// Total simulated instructions across all tenants.
    pub total_insts: u64,
    /// Wall-clock throughput in simulated instructions per second,
    /// measured and filled in by the *caller* (the bench binary, after
    /// its determinism cross-check). Always `None` from the scheduler
    /// itself — wall time is nondeterministic and must never
    /// participate in the 1-vs-N identity.
    pub insts_per_sec: Option<f64>,
}

impl ServeReport {
    /// Serving throughput: simulated instructions per scheduler round
    /// (the run's deterministic stand-in for wall-clock throughput).
    pub fn insts_per_round(&self) -> f64 {
        if self.queue.rounds == 0 {
            0.0
        } else {
            self.total_insts as f64 / self.queue.rounds as f64
        }
    }

    /// Pressure waves summed over all shards.
    pub fn pressure_waves(&self) -> u64 {
        self.shards.iter().map(|s| s.pressure_waves).sum()
    }

    /// Shed actions summed over all shards.
    pub fn shed_actions(&self) -> u64 {
        self.shards.iter().map(|s| s.shed_actions).sum()
    }

    /// Mean rounds from admission to the first exploit-phase round,
    /// over the tenants that got there; `None` if none did. The
    /// warm-start payoff metric: a restored mid-exploit engine scores
    /// zero.
    pub fn mean_rounds_to_first_exploit(&self) -> Option<f64> {
        let waits: Vec<u64> = self
            .tenants
            .iter()
            .filter_map(|t| t.first_exploit_round.map(|r| r - t.admitted_round))
            .collect();
        if waits.is_empty() {
            None
        } else {
            Some(waits.iter().sum::<u64>() as f64 / waits.len() as f64)
        }
    }

    /// Tenants whose policy engine never reached the exploit phase —
    /// the complement of [`mean_rounds_to_first_exploit`]'s
    /// population. Under a stream-adaptive policy this should be zero:
    /// short streams get truncated explore schedules sized to reach
    /// exploit before they finish.
    ///
    /// [`mean_rounds_to_first_exploit`]:
    /// ServeReport::mean_rounds_to_first_exploit
    pub fn never_exploited(&self) -> u64 {
        self.tenants
            .iter()
            .filter(|t| t.first_exploit_round.is_none())
            .count() as u64
    }

    /// Shard-contended rounds summed over all shards.
    pub fn contended_rounds(&self) -> u64 {
        self.shards.iter().map(|s| s.contended_rounds).sum()
    }

    /// Regions killed by self-modifying-code writes, summed over all
    /// tenants.
    pub fn smc_invalidated_regions(&self) -> u64 {
        self.tenants.iter().map(|t| t.smc_invalidated).sum()
    }

    /// Entry addresses demoted to the blacklist, summed over all
    /// tenants.
    pub fn blacklisted_targets(&self) -> u64 {
        self.tenants.iter().map(|t| t.blacklisted_targets).sum()
    }

    /// Graceful disconnects summed over all tenants.
    pub fn disconnects(&self) -> u64 {
        self.tenants.iter().map(|t| t.disconnects).sum()
    }

    /// Reconnects (re-admissions after churn) summed over all tenants.
    pub fn reconnects(&self) -> u64 {
        self.tenants.iter().map(|t| t.reconnects).sum()
    }

    /// Mid-run crashes summed over all tenants.
    pub fn crashes(&self) -> u64 {
        self.tenants.iter().map(|t| t.crashes).sum()
    }

    /// Epochs re-executed during crash recovery, summed over all
    /// tenants.
    pub fn recovered_epochs(&self) -> u64 {
        self.tenants.iter().map(|t| t.recovered_epochs).sum()
    }

    /// Tenants the failure domain quarantined instead of letting their
    /// defect kill the serve. Zero on every clean path.
    pub fn quarantined_tenants(&self) -> u64 {
        self.tenants.iter().filter(|t| t.quarantined).count() as u64
    }

    /// Per-tenant checkpoints written, summed over all tenants.
    pub fn checkpoints_taken(&self) -> u64 {
        self.tenants.iter().map(|t| t.checkpoints).sum()
    }

    /// Serialized size of every tenant's last checkpoint, summed — the
    /// steady-state footprint of the checkpoint store.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.tenants.iter().map(|t| t.checkpoint_bytes).sum()
    }

    /// Quarantine retries summed over all tenants.
    pub fn quarantine_retries(&self) -> u64 {
        self.tenants.iter().map(|t| t.quarantine_retries).sum()
    }

    /// Logical over unique bytes at the peak-occupancy barrier: how
    /// many copies of the average cached byte dedup avoided storing.
    /// 1.0 when nothing was shared, 0.0 when the store never held
    /// anything (sharing off or an empty run).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_bytes == 0 {
            0.0
        } else {
            self.logical_bytes as f64 / self.unique_bytes as f64
        }
    }

    /// Mean rounds from first arrival to first admission, over the
    /// tenants that *were* admitted — a never-admitted tenant has no
    /// admission wait, and averaging its zero in would understate the
    /// latency everyone else paid. 0.0 when no tenant was admitted.
    pub fn mean_admission_wait(&self) -> f64 {
        let waits: Vec<u64> = self
            .tenants
            .iter()
            .filter(|t| t.admitted)
            .map(|t| t.admission_wait)
            .collect();
        if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        }
    }

    /// Renders the report as JSON with a fixed field order: equal
    /// reports yield byte-identical strings, for any worker count.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        o.push_str("  \"bench\": \"serve\",\n");
        o.push_str(&format!("  \"epoch_len\": {},\n", self.epoch_len));
        o.push_str(&format!("  \"shard_count\": {},\n", self.shard_count));
        o.push_str(&format!("  \"shard_capacity\": {},\n", self.shard_capacity));
        o.push_str(&format!("  \"max_active\": {},\n", self.max_active));
        o.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        o.push_str(&format!("  \"warm_started\": {},\n", self.warm_started));
        o.push_str(&format!(
            "  \"warm_regions_restored\": {},\n",
            self.warm_regions_restored
        ));
        o.push_str(&format!(
            "  \"warm_rejected_tenants\": {},\n",
            self.warm_rejected_tenants
        ));
        o.push_str(&format!("  \"smc_write_ppm\": {},\n", self.smc_write_ppm));
        o.push_str(&format!("  \"fault_seed\": {},\n", self.fault_seed));
        o.push_str(&format!("  \"flush_wave_ppm\": {},\n", self.flush_wave_ppm));
        o.push_str(&format!(
            "  \"counter_fault_ppm\": {},\n",
            self.counter_fault_ppm
        ));
        o.push_str(&format!("  \"churn_active\": {},\n", self.churn_active));
        o.push_str(&format!("  \"churn_seed\": {},\n", self.churn_seed));
        o.push_str(&format!(
            "  \"checkpoint_every\": {},\n",
            self.checkpoint_every
        ));
        o.push_str(&format!("  \"share_active\": {},\n", self.share_active));
        o.push_str(&format!("  \"rounds\": {},\n", self.queue.rounds));
        o.push_str(&format!("  \"total_insts\": {},\n", self.total_insts));
        o.push_str(&format!(
            "  \"insts_per_round\": {:.1},\n",
            self.insts_per_round()
        ));
        o.push_str(&format!(
            "  \"insts_per_sec\": {},\n",
            match self.insts_per_sec {
                Some(v) => format!("{v:.1}"),
                None => "null".to_string(),
            }
        ));
        o.push_str(&format!("  \"admissions\": {},\n", self.queue.admissions));
        o.push_str(&format!("  \"peak_active\": {},\n", self.queue.peak_active));
        o.push_str(&format!(
            "  \"peak_queue_depth\": {},\n",
            self.queue.peak_queue_depth
        ));
        o.push_str(&format!(
            "  \"queued_tenant_rounds\": {},\n",
            self.queue.queued_tenant_rounds
        ));
        o.push_str(&format!(
            "  \"deferred_tenant_rounds\": {},\n",
            self.queue.deferred_tenant_rounds
        ));
        o.push_str(&format!(
            "  \"shed_arrivals\": {},\n",
            self.queue.shed_arrivals
        ));
        o.push_str(&format!(
            "  \"admission_retries\": {},\n",
            self.queue.admission_retries
        ));
        o.push_str(&format!(
            "  \"pressure_waves\": {},\n",
            self.pressure_waves()
        ));
        o.push_str(&format!("  \"shed_actions\": {},\n", self.shed_actions()));
        o.push_str(&format!(
            "  \"contended_rounds\": {},\n",
            self.contended_rounds()
        ));
        o.push_str(&format!(
            "  \"smc_invalidated_regions\": {},\n",
            self.smc_invalidated_regions()
        ));
        o.push_str(&format!(
            "  \"blacklisted_targets\": {},\n",
            self.blacklisted_targets()
        ));
        o.push_str(&format!("  \"disconnects\": {},\n", self.disconnects()));
        o.push_str(&format!("  \"reconnects\": {},\n", self.reconnects()));
        o.push_str(&format!("  \"crashes\": {},\n", self.crashes()));
        o.push_str(&format!(
            "  \"recovered_epochs\": {},\n",
            self.recovered_epochs()
        ));
        o.push_str(&format!(
            "  \"quarantined_tenants\": {},\n",
            self.quarantined_tenants()
        ));
        o.push_str(&format!(
            "  \"checkpoints_taken\": {},\n",
            self.checkpoints_taken()
        ));
        o.push_str(&format!(
            "  \"checkpoint_bytes\": {},\n",
            self.checkpoint_bytes()
        ));
        o.push_str(&format!(
            "  \"quarantine_retries\": {},\n",
            self.quarantine_retries()
        ));
        o.push_str(&format!(
            "  \"mean_rounds_to_first_exploit\": {},\n",
            match self.mean_rounds_to_first_exploit() {
                Some(v) => format!("{v:.4}"),
                None => "null".to_string(),
            }
        ));
        o.push_str(&format!(
            "  \"never_exploited\": {},\n",
            self.never_exploited()
        ));
        // Dedup metrics only exist when the shared store ran; emitting
        // zeros with sharing off made "no store" indistinguishable
        // from "a store that never held anything".
        if self.share_active {
            o.push_str(&format!("  \"unique_bytes\": {},\n", self.unique_bytes));
            o.push_str(&format!("  \"logical_bytes\": {},\n", self.logical_bytes));
            o.push_str(&format!("  \"shared_refs\": {},\n", self.shared_refs));
            o.push_str(&format!("  \"dedup_ratio\": {:.4},\n", self.dedup_ratio()));
        } else {
            o.push_str("  \"unique_bytes\": null,\n");
            o.push_str("  \"logical_bytes\": null,\n");
            o.push_str("  \"shared_refs\": null,\n");
            o.push_str("  \"dedup_ratio\": null,\n");
        }
        o.push_str(&format!(
            "  \"mean_admission_wait\": {:.4},\n",
            self.mean_admission_wait()
        ));
        let hist: Vec<String> = self
            .queue
            .admission_wait_hist
            .iter()
            .map(|n| n.to_string())
            .collect();
        o.push_str(&format!(
            "  \"admission_wait_hist\": [{}],\n",
            hist.join(", ")
        ));
        o.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            let first_exploit = match t.first_exploit_round {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            };
            let features = match &t.policy_features {
                None => "null".to_string(),
                Some(f) => format!(
                    "{{\"expected_epochs\": {}, \"blocks\": {}, \
                     \"mean_block_insts\": {:.4}, \"taken_density\": {:.4}, \
                     \"backward_fraction\": {:.4}, \"prior\": \"{}\", \
                     \"explore_len\": {}}}",
                    f.expected_epochs,
                    f.blocks,
                    f.mean_block_insts,
                    f.taken_density,
                    f.backward_fraction,
                    f.prior.name(),
                    f.explore_len,
                ),
            };
            o.push_str(&format!(
                "    {{\"tenant\": {}, \"workload\": \"{}\", \"final_selector\": \"{}\", \
                 \"epochs\": {}, \"switches\": {}, \"admitted\": {}, \"admitted_round\": {}, \
                 \"admission_wait\": {}, \
                 \"finished_round\": {}, \"first_exploit_round\": {}, \"total_insts\": {}, \
                 \"cache_insts\": {}, \"hit_rate\": {:.4}, \"insts_selected\": {}, \
                 \"regions_selected\": {}, \"pressure_evicted\": {}, \
                 \"utility_evictions\": {}, \"smc_events\": {}, \
                 \"smc_invalidated\": {}, \"reformations\": {}, \"blacklisted_targets\": {}, \
                 \"blacklist_hits\": {}, \"disconnects\": {}, \"reconnects\": {}, \
                 \"crashes\": {}, \"recovered_epochs\": {}, \"checkpoints\": {}, \
                 \"checkpoint_bytes\": {}, \"quarantined\": {}, \
                 \"quarantine_retries\": {}, \"smc_dips\": {}, \
                 \"max_dip_depth\": {:.4}, \"max_dip_recovery_epochs\": {}, \
                 \"policy_features\": {}}}{}\n",
                t.tenant,
                t.workload,
                t.final_selector,
                t.epochs,
                t.switches,
                t.admitted,
                t.admitted_round,
                t.admission_wait,
                t.finished_round,
                first_exploit,
                t.total_insts,
                t.cache_insts,
                t.hit_rate(),
                t.insts_selected,
                t.regions_selected,
                t.pressure_evicted,
                t.utility_evictions,
                t.smc_events,
                t.smc_invalidated,
                t.reformations,
                t.blacklisted_targets,
                t.blacklist_hits,
                t.disconnects,
                t.reconnects,
                t.crashes,
                t.recovered_epochs,
                t.checkpoints,
                t.checkpoint_bytes,
                t.quarantined,
                t.quarantine_retries,
                t.smc_dips,
                t.max_dip_depth,
                t.max_dip_recovery_epochs,
                features,
                if i + 1 < self.tenants.len() { "," } else { "" }
            ));
        }
        o.push_str("  ],\n");
        o.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            let (unique, logical, refs) = if self.share_active {
                (
                    s.unique_bytes.to_string(),
                    s.logical_bytes.to_string(),
                    s.shared_refs.to_string(),
                )
            } else {
                ("null".into(), "null".into(), "null".into())
            };
            o.push_str(&format!(
                "    {{\"shard\": {}, \"peak_bytes\": {}, \"contended_rounds\": {}, \
                 \"pressure_waves\": {}, \"shed_actions\": {}, \"evicted_regions\": {}, \
                 \"smc_invalidated\": {}, \"final_bytes\": {}, \"unique_bytes\": {}, \
                 \"logical_bytes\": {}, \"shared_refs\": {}}}{}\n",
                s.shard,
                s.peak_bytes,
                s.contended_rounds,
                s.pressure_waves,
                s.shed_actions,
                s.evicted_regions,
                s.smc_invalidated,
                s.final_bytes,
                unique,
                logical,
                refs,
                if i + 1 < self.shards.len() { "," } else { "" }
            ));
        }
        o.push_str("  ],\n");
        o.push_str("  \"switches\": [\n");
        for (i, s) in self.switches.iter().enumerate() {
            o.push_str(&format!(
                "    {{\"tenant\": {}, \"workload\": \"{}\", \"epoch\": {}, \
                 \"from\": \"{}\", \"to\": \"{}\", \"reason\": \"{}\"}}{}\n",
                s.tenant,
                s.workload,
                s.epoch,
                s.from.name(),
                s.to.name(),
                s.reason.as_str(),
                if i + 1 < self.switches.len() { "," } else { "" }
            ));
        }
        o.push_str("  ]\n}\n");
        o
    }
}

/// A serving run's full outcome: the aggregate report, every tenant's
/// complete [`RunReport`] in tenant order (for the determinism
/// cross-check and downstream figure code), and a snapshot of the
/// final serving state for the next run to warm-start from.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOutcome {
    /// The aggregate serving report.
    pub report: ServeReport,
    /// Per-tenant full run reports, in tenant order.
    pub run_reports: Vec<RunReport>,
    /// The run's final state (policy engines and cached regions),
    /// ready to persist with
    /// [`save_snapshot`](crate::snapshot::save_snapshot).
    pub snapshot: ServeSnapshot,
}

/// Tracks hit-rate dips caused by invalidation waves over one
/// tenant's epochs.
///
/// Calm epochs (no invalidations, no open dip) feed an exponential
/// moving average of the hit rate — the *baseline*. An epoch that
/// loses regions to self-modifying code opens a *dip*; the dip stays
/// open (its depth is the worst shortfall below the baseline) until
/// the hit rate climbs back to 95 % of the baseline, at which point
/// the recovery length in epochs is recorded. The tracker is pure
/// arithmetic over the deterministic epoch stream, so its summary is
/// byte-identical for every worker count.
#[derive(Clone, Debug, Default)]
pub struct DipTracker {
    baseline: Option<f64>,
    open: Option<Dip>,
    dips: u64,
    max_depth: f64,
    max_recovery: u64,
}

#[derive(Clone, Copy, Debug)]
struct Dip {
    depth: f64,
    epochs: u64,
}

impl DipTracker {
    /// Baseline EMA weight for the newest calm epoch.
    const ALPHA: f64 = 0.25;
    /// A dip closes when the hit rate reaches this fraction of the
    /// pre-dip baseline.
    const RECOVERY_FRACTION: f64 = 0.95;

    /// Feeds one epoch: its cache hit rate and whether it lost any
    /// regions to invalidation. Epochs that executed nothing should
    /// not be fed — a 0/0 hit rate says nothing about the cache.
    pub fn on_epoch(&mut self, hit_rate: f64, invalidated: bool) {
        if invalidated && self.open.is_none() {
            self.dips += 1;
            self.open = Some(Dip {
                depth: 0.0,
                epochs: 0,
            });
        }
        if let Some(mut dip) = self.open.take() {
            let base = self.baseline.unwrap_or(hit_rate);
            dip.epochs += 1;
            dip.depth = dip.depth.max(base - hit_rate);
            if hit_rate >= Self::RECOVERY_FRACTION * base {
                self.max_depth = self.max_depth.max(dip.depth);
                self.max_recovery = self.max_recovery.max(dip.epochs);
            } else {
                self.open = Some(dip);
            }
        } else {
            let b = self.baseline.get_or_insert(hit_rate);
            *b = Self::ALPHA * hit_rate + (1.0 - Self::ALPHA) * *b;
        }
    }

    /// Closes any still-open dip (a run can end mid-recovery) and
    /// returns the dip statistics.
    pub fn finish(mut self) -> DipSummary {
        if let Some(dip) = self.open.take() {
            self.max_depth = self.max_depth.max(dip.depth);
            self.max_recovery = self.max_recovery.max(dip.epochs);
        }
        DipSummary {
            dips: self.dips,
            max_depth: self.max_depth,
            max_recovery_epochs: self.max_recovery,
        }
    }
}

/// What a [`DipTracker`] measured over a tenant's run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DipSummary {
    /// Invalidation-induced dips observed.
    pub dips: u64,
    /// Deepest drop below the pre-dip baseline, absolute hit rate.
    pub max_depth: f64,
    /// Longest recovery back to 95 % of the baseline, in epochs.
    pub max_recovery_epochs: u64,
}

#[cfg(test)]
mod tests {
    use super::{DipTracker, WAIT_BUCKETS, wait_bucket};

    #[test]
    fn wait_buckets_are_log2_with_a_zero_bucket() {
        assert_eq!(wait_bucket(0), 0, "immediate admissions get bucket 0");
        assert_eq!(wait_bucket(1), 1);
        assert_eq!(wait_bucket(2), 2);
        assert_eq!(wait_bucket(3), 2);
        assert_eq!(wait_bucket(4), 3);
        assert_eq!(wait_bucket(7), 3);
        assert_eq!(wait_bucket(1 << 13), 14);
        assert_eq!(wait_bucket(1 << 20), WAIT_BUCKETS - 1, "the tail absorbs");
        assert_eq!(wait_bucket(u64::MAX), WAIT_BUCKETS - 1);
    }

    #[test]
    fn calm_runs_report_no_dips() {
        let mut t = DipTracker::default();
        for _ in 0..50 {
            t.on_epoch(0.9, false);
        }
        let s = t.finish();
        assert_eq!(s.dips, 0);
        assert_eq!(s.max_depth, 0.0);
        assert_eq!(s.max_recovery_epochs, 0);
    }

    #[test]
    fn a_wave_opens_one_dip_and_recovery_is_timed() {
        let mut t = DipTracker::default();
        for _ in 0..20 {
            t.on_epoch(0.9, false); // baseline settles near 0.9
        }
        t.on_epoch(0.5, true); // wave strikes: dip opens
        t.on_epoch(0.6, false); // still below 95 % of baseline
        t.on_epoch(0.7, false);
        t.on_epoch(0.89, false); // recovered
        for _ in 0..5 {
            t.on_epoch(0.9, false);
        }
        let s = t.finish();
        assert_eq!(s.dips, 1);
        assert!(s.max_depth > 0.35 && s.max_depth < 0.45, "{}", s.max_depth);
        assert_eq!(s.max_recovery_epochs, 4);
    }

    #[test]
    fn back_to_back_waves_extend_the_open_dip() {
        let mut t = DipTracker::default();
        for _ in 0..20 {
            t.on_epoch(0.9, false);
        }
        t.on_epoch(0.5, true);
        t.on_epoch(0.4, true); // second wave while still down: same dip
        t.on_epoch(0.9, false);
        let s = t.finish();
        assert_eq!(s.dips, 1, "an open dip absorbs further waves");
        assert!(s.max_depth > 0.45, "{}", s.max_depth);
        assert_eq!(s.max_recovery_epochs, 3);
    }

    #[test]
    fn a_run_ending_mid_dip_still_counts_it() {
        let mut t = DipTracker::default();
        for _ in 0..10 {
            t.on_epoch(0.9, false);
        }
        t.on_epoch(0.3, true);
        t.on_epoch(0.4, false);
        let s = t.finish(); // never recovered
        assert_eq!(s.dips, 1);
        assert!(s.max_depth > 0.5);
        assert_eq!(s.max_recovery_epochs, 2);
    }
}
