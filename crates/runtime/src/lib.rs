//! Multi-tenant serving runtime for region selection.
//!
//! The paper's framework simulates one program at a time; this crate
//! turns that machinery into a *serving subsystem* that runs many
//! tenant sessions concurrently against shared selection
//! infrastructure — the production shape the roadmap aims at, and the
//! setting "Beyond Static Policies" motivates: no single selection
//! policy wins across workloads and phases, so the selector must be
//! picked per tenant, online.
//!
//! Four pieces:
//!
//! - [`shard`] — a **sharded shared code cache**: every tenant still
//!   owns its region namespace (regions from different programs can
//!   never collide or be shared), but all tenants draw from shared
//!   capacity, accounted across N fxhash-addressed shards with
//!   per-shard locking. A shard over its byte budget triggers a
//!   pressure wave that sheds the heaviest tenants' oldest regions
//!   through the resilience hooks (`Simulator::evict_regions`), so
//!   evictions show up in each tenant's [`ResilienceStats`]
//!   (reformations, severed links, recovery transitions) exactly like
//!   any other cache-pressure event.
//! - [`session`] — a **tenant session**: one recorded workload replayed
//!   epoch by epoch through a [`Simulator`](rsel_core::Simulator) that
//!   persists across epochs (cache and metrics survive; the selector
//!   may be swapped at epoch boundaries).
//! - [`policy`] — an **adaptive policy engine** per tenant: explores
//!   the candidate [`SelectorKind`](rsel_core::SelectorKind)s one
//!   epoch each, scores them by observed hit rate minus a code
//!   expansion penalty, then exploits the winner — re-exploring when
//!   the score collapses (a phase shift).
//! - [`serve`] — the **session scheduler**: a bounded admission queue
//!   feeds up to `max_active` concurrent sessions; each round runs one
//!   epoch of every active session across `jobs` worker threads, then
//!   a deterministic barrier applies shard pressure and policy
//!   decisions in tenant order.
//! - [`store`] — a **content-addressed shared region store**
//!   (opt-in via [`ServeConfig::share`]): identical regions across
//!   tenants — homogeneous traffic replaying the same recordings —
//!   are fxhashed by canonical content ([`region_key`]) and
//!   deduplicated into refcounted per-shard entries, so each shard
//!   charges *unique* bytes against its budget while per-tenant
//!   logical bytes stay reported, and pressure eviction drops a
//!   shared entry from every referencing tenant at once.
//! - [`snapshot`] — **persistence**: a versioned binary
//!   [`ServeSnapshot`] format capturing every tenant's learned policy
//!   state, cached regions, and fault blacklist, with a
//!   strict-validation loader ([`load_snapshot`]) and a lenient one
//!   ([`load_warm_start`]) that degrades stale tenants to cold starts,
//!   so the next run can warm-start ([`serve_with`], [`serve_warm`])
//!   instead of re-exploring from scratch.
//!
//! Serving can also run **under fault traffic**: with nonzero
//! [`FaultConfig`](rsel_core::FaultConfig) rates in
//! [`ServeConfig::sim`], every tenant session carries its own
//! deterministic self-modifying-code, flush-wave, and counter-fault
//! schedule (seeded per tenant via [`tenant_fault_seed`]), and the
//! [`ServeReport`] breaks out invalidations taken, blacklist activity,
//! and hit-rate dip depth/recovery per tenant and per shard.
//!
//! And it can run **under churn**: [`churn`] generates seeded tenant
//! lifecycles — staggered arrivals, graceful disconnects that
//! checkpoint and reconnect warm, crashes that recover from their last
//! checkpoint — and a chaos poison pill that exercises the scheduler's
//! **failure domain**: a session that panics is quarantined at the
//! next barrier (partial metrics kept, everyone else unaffected)
//! instead of killing the serve, and setup problems surface as typed
//! [`ServeError`]s rather than panics. Sustained arrival pressure is
//! handled by admission shedding with exponential backoff
//! ([`ServeConfig::admission_timeout`]).
//!
//! # Determinism
//!
//! The merged per-tenant [`RunReport`](rsel_core::RunReport)s and the
//! [`ServeReport`] are **byte-identical for any worker count**. Within
//! a round, sessions only touch their own simulator plus commutative
//! shard accounting; every cross-tenant decision (admission, pressure
//! eviction, policy switching) happens at the round barrier in tenant
//! order. Nothing wall-clock-dependent enters a report: throughput is
//! measured in simulated instructions per scheduler round.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod policy;
pub mod report;
pub mod serve;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod store;

pub use churn::{ChaosConfig, ChurnConfig, LifecycleEvent, LifecycleKind, TenantLifecycle};
pub use policy::{PolicyConfig, PolicyEngine, PolicyState, SwitchReason, SwitchRecord};
pub use report::{
    DipSummary, DipTracker, QueueStats, ServeOutcome, ServeReport, ShardReport, TenantSummary,
};
pub use serve::{ServeConfig, ServeError, serve, serve_warm, serve_with, tenant_fault_seed};
pub use session::{EpochStats, TenantSession, TenantSpec};
pub use shard::{SharedCacheMap, shard_of};
pub use snapshot::{
    RegionSnapshot, ServeSnapshot, SnapshotError, TenantSnapshot, WarmStart, load_snapshot,
    load_warm_start, save_snapshot, tenant_snapshot_bytes,
};
pub use store::{RegionStore, StoreEntry, StoreShardStats, StoreTotals, region_key, shard_of_key};
