//! Multi-tenant serving runtime for region selection.
//!
//! The paper's framework simulates one program at a time; this crate
//! turns that machinery into a *serving subsystem* that runs many
//! tenant sessions concurrently against shared selection
//! infrastructure — the production shape the roadmap aims at, and the
//! setting "Beyond Static Policies" motivates: no single selection
//! policy wins across workloads and phases, so the selector must be
//! picked per tenant, online.
//!
//! Four pieces:
//!
//! - [`shard`] — a **sharded shared code cache**: every tenant still
//!   owns its region namespace (regions from different programs can
//!   never collide or be shared), but all tenants draw from shared
//!   capacity, accounted across N fxhash-addressed shards with
//!   per-shard locking. A shard over its byte budget triggers a
//!   pressure wave that sheds the heaviest tenants' oldest regions
//!   through the resilience hooks (`Simulator::evict_regions`), so
//!   evictions show up in each tenant's [`ResilienceStats`]
//!   (reformations, severed links, recovery transitions) exactly like
//!   any other cache-pressure event.
//! - [`session`] — a **tenant session**: one recorded workload replayed
//!   epoch by epoch through a [`Simulator`](rsel_core::Simulator) that
//!   persists across epochs (cache and metrics survive; the selector
//!   may be swapped at epoch boundaries).
//! - [`policy`] — an **adaptive policy engine** per tenant: explores
//!   the candidate [`SelectorKind`](rsel_core::SelectorKind)s one
//!   epoch each, scores them by observed hit rate minus a code
//!   expansion penalty, then exploits the winner — re-exploring when
//!   the score collapses (a phase shift).
//! - [`serve`] — the **session scheduler**: a bounded admission queue
//!   feeds up to `max_active` concurrent sessions; each round runs one
//!   epoch of every active session across `jobs` worker threads, then
//!   a deterministic barrier applies shard pressure and policy
//!   decisions in tenant order.
//! - [`snapshot`] — **persistence**: a versioned binary
//!   [`ServeSnapshot`] format capturing every tenant's learned policy
//!   state and cached regions, with a strict-validation loader, so the
//!   next run can warm-start ([`serve_with`]) instead of re-exploring
//!   from scratch.
//!
//! # Determinism
//!
//! The merged per-tenant [`RunReport`](rsel_core::RunReport)s and the
//! [`ServeReport`] are **byte-identical for any worker count**. Within
//! a round, sessions only touch their own simulator plus commutative
//! shard accounting; every cross-tenant decision (admission, pressure
//! eviction, policy switching) happens at the round barrier in tenant
//! order. Nothing wall-clock-dependent enters a report: throughput is
//! measured in simulated instructions per scheduler round.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod report;
pub mod serve;
pub mod session;
pub mod shard;
pub mod snapshot;

pub use policy::{PolicyConfig, PolicyEngine, PolicyState, SwitchReason, SwitchRecord};
pub use report::{QueueStats, ServeOutcome, ServeReport, ShardReport, TenantSummary};
pub use serve::{ServeConfig, serve, serve_with};
pub use session::{EpochStats, TenantSession, TenantSpec};
pub use shard::{SharedCacheMap, shard_of};
pub use snapshot::{
    RegionSnapshot, ServeSnapshot, SnapshotError, TenantSnapshot, load_snapshot, save_snapshot,
};
