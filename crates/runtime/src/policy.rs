//! The adaptive selector policy engine.
//!
//! The paper's central observation is that no single region-selection
//! algorithm dominates: which selector wins depends on the workload's
//! control-flow character, and (for phased programs) on *when* you ask.
//! The engine turns that observation into an online policy, one engine
//! per tenant:
//!
//! 1. **Explore** — run each candidate [`SelectorKind`] for one epoch
//!    and score it by observed hit rate minus a code-expansion penalty
//!    (cache capacity is shared, so expansion is charged, not free);
//! 2. **Exploit** — switch to the best-scoring candidate and stay on
//!    it, tracking an exponential moving average of its score;
//! 3. **Re-explore** — when the score drops well below the moving
//!    average (a phase shift: the program's hot working set changed),
//!    restart exploration from scratch.
//!
//! Every decision is a pure function of epoch deltas, so the engine is
//! deterministic and never couples tenants to each other or to the
//! worker count.
//!
//! # Stream-adaptive candidates
//!
//! The fixed explore schedule has two pathologies the paper's
//! workload-dependence observation predicts: a short-stream tenant
//! burns its whole session exploring and never exploits, and every
//! tenant pays the same exploration cost regardless of how obvious its
//! control-flow character is. With [`PolicyConfig::adaptive`] on,
//! [`derive_tenant_policy`] specializes the candidate list per tenant
//! *before serving starts*, from data that is already deterministic:
//! the decoded stream's length and its decode-time
//! [`StreamStats`](rsel_trace::StreamStats). A feature-conditioned
//! prior selector is moved to the front of the list (loop-heavy
//! streams lean LEI-shaped, branchy ones lean combined, straight-line
//! ones NET), and the explore schedule is truncated so a tenant with
//! `E` expected epochs explores at most `ceil(E / 2)` candidates —
//! short streams reach exploit, long streams may explore the full
//! extended set. The derivation is a pure function of
//! `(PolicyConfig, TenantSpec)`, so the snapshot loader can re-derive
//! each tenant's candidate list and per-tenant state stays portable.

use crate::session::{EpochStats, TenantSpec};
use rsel_core::select::SelectorKind;

/// Smoothing factor for the exploit-phase score average.
const EMA_ALPHA: f64 = 0.3;

/// Tuning knobs for the policy engine.
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// Candidate selectors, explored in order. Must be non-empty.
    pub candidates: Vec<SelectorKind>,
    /// Weight of the code-expansion term in the score
    /// (`hit_rate - expansion_weight * expansion`). Expansion per epoch
    /// is small (insts copied / insts executed), so the weight is
    /// large.
    pub expansion_weight: f64,
    /// How far the score must fall below the exploit-phase average
    /// before the engine declares a phase shift and re-explores.
    pub drop_margin: f64,
    /// Epochs executing fewer instructions than this carry no signal
    /// (e.g. the trailing sliver of a stream) and make no decision.
    pub min_epoch_insts: u64,
    /// Stream-adaptive mode: derive each tenant's candidate list from
    /// its decoded stream ([`derive_tenant_policy`]) instead of using
    /// `candidates` verbatim. Off by default — the legacy fixed
    /// schedule stays bit-identical.
    pub adaptive: bool,
    /// Steps per serving epoch, used (only when `adaptive`) to
    /// estimate how many epochs a stream will run and truncate the
    /// explore schedule to fit. Keep equal to the scheduler's
    /// `ServeConfig::epoch_len`.
    pub epoch_len: usize,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            candidates: SelectorKind::all().to_vec(),
            expansion_weight: 8.0,
            drop_margin: 0.15,
            min_epoch_insts: 1000,
            adaptive: false,
            epoch_len: 4096,
        }
    }
}

/// The program-shape features a tenant's adaptive policy was derived
/// from, kept for the report: what the engine saw, which prior it
/// chose, and how long its truncated explore schedule is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyFeatures {
    /// Expected serving epochs (`ceil(stream steps / epoch_len)`).
    pub expected_epochs: u64,
    /// Executed blocks in the recorded stream.
    pub blocks: u64,
    /// Mean instructions per executed block.
    pub mean_block_insts: f64,
    /// Taken branches per executed block.
    pub taken_density: f64,
    /// Backward taken branches over all taken branches (loopiness).
    pub backward_fraction: f64,
    /// The feature-conditioned prior: the first candidate explored.
    pub prior: SelectorKind,
    /// Length of the truncated explore schedule.
    pub explore_len: u32,
}

/// Specializes `base` for one tenant (see the module docs): picks a
/// feature-conditioned prior selector, moves it to the front of the
/// candidate list, and truncates the list to `ceil(E / 2)` entries for
/// a stream expected to run `E` epochs, so exploration never eats the
/// whole session. A pure function of its arguments — the snapshot
/// loader re-derives the same list when validating persisted state.
///
/// With `base.adaptive` off this is the identity: the base config
/// comes back unchanged and no features are reported.
pub fn derive_tenant_policy(
    base: &PolicyConfig,
    spec: &TenantSpec,
) -> (PolicyConfig, Option<PolicyFeatures>) {
    if !base.adaptive {
        return (base.clone(), None);
    }
    let stats = spec.stream_stats();
    let blocks = stats.blocks.max(1);
    let mean_block_insts = stats.instructions as f64 / blocks as f64;
    let taken_density = stats.taken_branches as f64 / blocks as f64;
    let backward_fraction = if stats.taken_branches == 0 {
        0.0
    } else {
        stats.backward_taken as f64 / stats.taken_branches as f64
    };
    let expected_epochs = (spec.len() as u64)
        .div_ceil(base.epoch_len.max(1) as u64)
        .max(1);
    // The prior leans on the paper's characterization of the
    // algorithms: loop-dominated streams favor the backward-taken
    // anchoring of LEI, densely branchy ones the combined variants'
    // wider join heuristics, and long straight-line blocks NET's
    // next-executing-tail growth.
    let prior = if backward_fraction >= 0.5 {
        SelectorKind::Lei
    } else if taken_density >= 0.6 {
        SelectorKind::CombinedLei
    } else if mean_block_insts >= 6.0 {
        SelectorKind::Net
    } else {
        SelectorKind::CombinedNet
    };
    let mut candidates = Vec::with_capacity(base.candidates.len());
    if let Some(pos) = base.candidates.iter().position(|&k| k == prior) {
        candidates.push(base.candidates[pos]);
        candidates.extend(
            base.candidates
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != pos)
                .map(|(_, &k)| k),
        );
    } else {
        // A prior outside the configured pool falls back to the
        // configured order.
        candidates.extend(base.candidates.iter().copied());
    }
    let budget = expected_epochs
        .div_ceil(2)
        .clamp(1, candidates.len() as u64) as usize;
    candidates.truncate(budget);
    let features = PolicyFeatures {
        expected_epochs,
        blocks: stats.blocks,
        mean_block_insts,
        taken_density,
        backward_fraction,
        prior: candidates[0],
        explore_len: candidates.len() as u32,
    };
    (
        PolicyConfig {
            candidates,
            ..base.clone()
        },
        Some(features),
    )
}

/// Why the engine switched selectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchReason {
    /// Moving on to the next unexplored candidate.
    Explore,
    /// Exploration finished; adopting the best-scoring candidate.
    Exploit,
    /// The exploited score collapsed; restarting exploration.
    PhaseShift,
}

impl SwitchReason {
    /// Stable lower-case label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SwitchReason::Explore => "explore",
            SwitchReason::Exploit => "exploit",
            SwitchReason::PhaseShift => "phase-shift",
        }
    }
}

/// One selector switch, as logged in the [`ServeReport`](crate::ServeReport).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchRecord {
    /// The tenant that switched.
    pub tenant: u16,
    /// Its workload name.
    pub workload: &'static str,
    /// The tenant's epoch count at the switch.
    pub epoch: u64,
    /// Selector before the switch.
    pub from: SelectorKind,
    /// Selector after the switch.
    pub to: SelectorKind,
    /// Why.
    pub reason: SwitchReason,
}

/// A [`PolicyEngine`]'s exportable state: everything the engine has
/// learned, detached from its configuration. Produced by
/// [`PolicyEngine::export`], persisted by the snapshot layer
/// ([`crate::snapshot`]), and turned back into a live engine by
/// [`PolicyEngine::restore`].
///
/// Scores are positional with the candidate list, and the state
/// carries the candidates it was learned under: a snapshot can never
/// be replayed against a different candidate set silently
/// ([`PolicyEngine::restore`] rejects the mismatch).
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyState {
    /// Whether the engine is exploring (`true`) or exploiting.
    pub exploring: bool,
    /// Index of the next candidate to explore (meaningful only while
    /// exploring; always in `1..=candidates.len()`).
    pub next: u32,
    /// Index of the candidate currently running.
    pub current: u32,
    /// The candidate selectors the state was learned under, in
    /// exploration order.
    pub candidates: Vec<SelectorKind>,
    /// Exploration scores, one slot per candidate.
    pub scores: Vec<Option<f64>>,
    /// Exploit-phase moving average of the score.
    pub ema: f64,
    /// Switches decided so far.
    pub switches: u64,
}

#[derive(Clone, Copy, Debug)]
enum Phase {
    /// Exploring; `next` is the index of the next candidate to try.
    Explore { next: usize },
    /// Settled on the current candidate.
    Exploit,
}

/// Per-tenant online selector choice (see the module docs).
#[derive(Debug)]
pub struct PolicyEngine {
    config: PolicyConfig,
    phase: Phase,
    /// Index of the candidate currently running.
    current: usize,
    /// Exploration scores, one per candidate.
    scores: Vec<Option<f64>>,
    /// Exploit-phase moving average of the score.
    ema: f64,
    switches: u64,
}

impl PolicyEngine {
    /// Creates an engine; the session must start on
    /// [`PolicyEngine::current`], the first candidate.
    ///
    /// # Panics
    ///
    /// Panics if `config.candidates` is empty.
    pub fn new(config: PolicyConfig) -> Self {
        assert!(!config.candidates.is_empty(), "need at least one candidate");
        let n = config.candidates.len();
        // An adaptive engine whose schedule was truncated to a single
        // candidate has nothing to explore: it exploits from epoch 0,
        // which is what lets a one-epoch tenant report a first exploit
        // round at all.
        let phase = if config.adaptive && n == 1 {
            Phase::Exploit
        } else {
            Phase::Explore { next: 1 }
        };
        PolicyEngine {
            config,
            phase,
            current: 0,
            scores: vec![None; n],
            ema: 0.0,
            switches: 0,
        }
    }

    /// The selector the engine wants running now.
    pub fn current(&self) -> SelectorKind {
        self.config.candidates[self.current]
    }

    /// Whether the engine has settled on a candidate (exploit phase).
    pub fn exploiting(&self) -> bool {
        matches!(self.phase, Phase::Exploit)
    }

    /// The candidate selectors, in exploration order.
    pub fn candidates(&self) -> &[SelectorKind] {
        &self.config.candidates
    }

    /// Exports the engine's learned state (see [`PolicyState`]).
    pub fn export(&self) -> PolicyState {
        PolicyState {
            exploring: matches!(self.phase, Phase::Explore { .. }),
            next: match self.phase {
                Phase::Explore { next } => next as u32,
                Phase::Exploit => 0,
            },
            current: self.current as u32,
            candidates: self.config.candidates.clone(),
            scores: self.scores.clone(),
            ema: self.ema,
            switches: self.switches,
        }
    }

    /// Rebuilds an engine from exported state, continuing exactly where
    /// the exporting engine left off — the same phase, per-candidate
    /// scores, moving average, and switch count ([`PolicyEngine::switches`]
    /// keeps accumulating across the restore, the way
    /// `Simulator::set_selector` carries peak floors across selector
    /// swaps).
    ///
    /// Returns `None` when `state` is inconsistent with `config`: a
    /// candidate list or score-slot count that does not match the
    /// configuration, an index out of range, or a non-finite
    /// score/average.
    pub fn restore(config: PolicyConfig, state: &PolicyState) -> Option<Self> {
        let n = config.candidates.len();
        if n == 0 || state.candidates != config.candidates {
            return None;
        }
        if state.scores.len() != n || (state.current as usize) >= n {
            return None;
        }
        if state.exploring && !(1..=n).contains(&(state.next as usize)) {
            return None;
        }
        if !state.ema.is_finite() || state.scores.iter().flatten().any(|s| !s.is_finite()) {
            return None;
        }
        Some(PolicyEngine {
            config,
            phase: if state.exploring {
                Phase::Explore {
                    next: state.next as usize,
                }
            } else {
                Phase::Exploit
            },
            current: state.current as usize,
            scores: state.scores.clone(),
            ema: state.ema,
            switches: state.switches,
        })
    }

    /// Switches decided so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Scores one epoch of the current selector.
    fn score(&self, stats: &EpochStats) -> f64 {
        stats.hit_rate() - self.config.expansion_weight * stats.expansion()
    }

    /// Feeds one epoch's deltas; returns the selector to switch to (and
    /// why) if the engine decided to move, `None` to stay put.
    pub fn on_epoch(&mut self, stats: &EpochStats) -> Option<(SelectorKind, SwitchReason)> {
        if stats.insts < self.config.min_epoch_insts {
            return None; // too little signal; keep the current selector
        }
        let score = self.score(stats);
        match self.phase {
            Phase::Explore { next } => {
                self.scores[self.current] = Some(score);
                if next < self.config.candidates.len() {
                    // Try the next candidate for one epoch.
                    self.phase = Phase::Explore { next: next + 1 };
                    self.switch_to(next, SwitchReason::Explore)
                } else {
                    // Everyone scored: adopt the best (ties fall to the
                    // earliest candidate, deterministically).
                    let best = self
                        .scores
                        .iter()
                        .enumerate()
                        .max_by(|(ai, a), (bi, b)| {
                            a.partial_cmp(b)
                                .expect("scores are finite")
                                .then(bi.cmp(ai))
                        })
                        .map(|(i, _)| i)
                        .expect("candidates is non-empty");
                    self.phase = Phase::Exploit;
                    self.ema = self.scores[best].expect("explored every candidate");
                    if best == self.current {
                        None
                    } else {
                        self.switch_to(best, SwitchReason::Exploit)
                    }
                }
            }
            Phase::Exploit => {
                // A single-candidate adaptive engine has no
                // alternative to re-explore; cycling back through
                // Explore would only flicker `exploiting()` off.
                let sole = self.config.adaptive && self.config.candidates.len() == 1;
                if score < self.ema - self.config.drop_margin && !sole {
                    // Phase shift: the winner stopped winning. Restart
                    // exploration from candidate 0.
                    self.scores.fill(None);
                    self.phase = Phase::Explore { next: 1 };
                    if self.current == 0 {
                        // Already on candidate 0: next epoch scores it.
                        None
                    } else {
                        self.switch_to(0, SwitchReason::PhaseShift)
                    }
                } else {
                    self.ema = (1.0 - EMA_ALPHA) * self.ema + EMA_ALPHA * score;
                    None
                }
            }
        }
    }

    fn switch_to(
        &mut self,
        index: usize,
        reason: SwitchReason,
    ) -> Option<(SelectorKind, SwitchReason)> {
        self.current = index;
        self.switches += 1;
        Some((self.config.candidates[index], reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(insts: u64, cache: u64, selected: u64) -> EpochStats {
        EpochStats {
            steps: insts / 3,
            insts,
            cache_insts: cache,
            insts_selected: selected,
            regions_selected: selected / 10,
            ..EpochStats::default()
        }
    }

    #[test]
    fn explores_every_candidate_then_exploits_the_best() {
        let mut e = PolicyEngine::new(PolicyConfig::default());
        assert_eq!(e.current(), SelectorKind::Net);
        // NET scores 0.50, LEI 0.90, combined NET 0.40, combined LEI 0.60.
        let scores = [5000u64, 9000, 4000, 6000];
        let mut moves = Vec::new();
        for &cache in &scores {
            if let Some(m) = e.on_epoch(&epoch(10_000, cache, 0)) {
                moves.push(m);
            }
        }
        assert_eq!(moves.len(), 4, "three explore hops plus the adoption");
        assert_eq!(moves[3], (SelectorKind::Lei, SwitchReason::Exploit));
        assert_eq!(e.current(), SelectorKind::Lei);
        assert_eq!(e.switches(), 4);
        // Steady scores keep it exploiting.
        assert_eq!(e.on_epoch(&epoch(10_000, 9000, 0)), None);
    }

    #[test]
    fn expansion_is_charged_against_the_score() {
        let mut e = PolicyEngine::new(PolicyConfig::default());
        // NET: hit 0.9 but copies 5% of executed insts -> 0.9 - 8*0.05 = 0.5.
        // LEI: hit 0.8, copies nothing -> 0.8. LEI wins.
        e.on_epoch(&epoch(10_000, 9000, 500));
        e.on_epoch(&epoch(10_000, 8000, 0));
        e.on_epoch(&epoch(10_000, 1000, 0));
        let last = e.on_epoch(&epoch(10_000, 1000, 0));
        assert_eq!(last, Some((SelectorKind::Lei, SwitchReason::Exploit)));
    }

    #[test]
    fn score_collapse_triggers_re_exploration() {
        let mut e = PolicyEngine::new(PolicyConfig::default());
        for _ in 0..4 {
            e.on_epoch(&epoch(10_000, 9000, 0)); // everyone scores 0.9
        }
        assert_eq!(e.current(), SelectorKind::Net, "tie falls to the first");
        assert_eq!(e.on_epoch(&epoch(10_000, 8800, 0)), None, "small dip: stay");
        // The hot set changed: hit rate collapses far below the average.
        let m = e.on_epoch(&epoch(10_000, 2000, 0));
        // Already on candidate 0, so no switch is emitted, but the next
        // epochs walk the candidates again.
        assert_eq!(m, None);
        let m = e.on_epoch(&epoch(10_000, 2000, 0));
        assert_eq!(m, Some((SelectorKind::Lei, SwitchReason::Explore)));
    }

    #[test]
    fn phase_shift_switches_back_to_first_candidate() {
        let mut e = PolicyEngine::new(PolicyConfig::default());
        // LEI ends up the winner.
        for &cache in &[5000u64, 9000, 4000, 6000] {
            e.on_epoch(&epoch(10_000, cache, 0));
        }
        assert_eq!(e.current(), SelectorKind::Lei);
        let m = e.on_epoch(&epoch(10_000, 1000, 0));
        assert_eq!(m, Some((SelectorKind::Net, SwitchReason::PhaseShift)));
    }

    #[test]
    fn export_restore_round_trips_and_keeps_deciding() {
        // Drive an engine mid-exploration, freeze it, thaw it, and
        // check the thawed engine is indistinguishable from the
        // original — state-identical and decision-identical.
        let mut e = PolicyEngine::new(PolicyConfig::default());
        e.on_epoch(&epoch(10_000, 5000, 0));
        e.on_epoch(&epoch(10_000, 9000, 0));
        let state = e.export();
        assert!(state.exploring);
        assert_eq!(state.switches, 2);
        let mut r = PolicyEngine::restore(PolicyConfig::default(), &state).unwrap();
        assert_eq!(r.export(), state);
        assert_eq!(r.current(), e.current());
        let next = epoch(10_000, 4000, 0);
        assert_eq!(r.on_epoch(&next), e.on_epoch(&next));
        assert_eq!(r.export(), e.export());
        // An exploit-phase engine round-trips too, including the EMA.
        e.on_epoch(&epoch(10_000, 6000, 0));
        assert!(e.exploiting());
        let state = e.export();
        let r = PolicyEngine::restore(PolicyConfig::default(), &state).unwrap();
        assert!(r.exploiting());
        assert_eq!(r.export(), state);
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let good = PolicyEngine::new(PolicyConfig::default()).export();
        let cfg = PolicyConfig::default;
        assert!(PolicyEngine::restore(cfg(), &good).is_some());
        let mut bad = good.clone();
        bad.scores.pop();
        assert!(PolicyEngine::restore(cfg(), &bad).is_none(), "score count");
        let mut bad = good.clone();
        bad.candidates.reverse();
        assert!(
            PolicyEngine::restore(cfg(), &bad).is_none(),
            "foreign candidate list"
        );
        let mut bad = good.clone();
        bad.current = 99;
        assert!(PolicyEngine::restore(cfg(), &bad).is_none(), "current oob");
        let mut bad = good.clone();
        bad.next = 0;
        assert!(PolicyEngine::restore(cfg(), &bad).is_none(), "next oob");
        let mut bad = good.clone();
        bad.ema = f64::NAN;
        assert!(PolicyEngine::restore(cfg(), &bad).is_none(), "NaN ema");
        let mut bad = good;
        bad.scores[0] = Some(f64::INFINITY);
        assert!(PolicyEngine::restore(cfg(), &bad).is_none(), "inf score");
    }

    #[test]
    fn tiny_epochs_make_no_decision() {
        let mut e = PolicyEngine::new(PolicyConfig::default());
        assert_eq!(e.on_epoch(&epoch(10, 10, 0)), None);
        assert_eq!(e.current(), SelectorKind::Net, "still on the first");
        assert_eq!(e.switches(), 0);
    }

    #[test]
    fn extended_pool_explores_all_eight_then_exploits() {
        let config = PolicyConfig {
            candidates: SelectorKind::extended().to_vec(),
            ..PolicyConfig::default()
        };
        let mut e = PolicyEngine::new(config);
        // Candidate 5 (BOA) scores best; everyone else ties at 0.5.
        let mut moves = Vec::new();
        for i in 0..8u64 {
            let cache = if i == 5 { 9000 } else { 5000 };
            if let Some(m) = e.on_epoch(&epoch(10_000, cache, 0)) {
                moves.push(m);
            }
        }
        assert_eq!(moves.len(), 8, "seven explore hops plus the adoption");
        assert_eq!(moves[7], (SelectorKind::Boa, SwitchReason::Exploit));
        assert!(e.exploiting());
        assert_eq!(e.current(), SelectorKind::Boa);
    }

    #[test]
    fn extended_state_export_restore_round_trips() {
        let config = || PolicyConfig {
            candidates: SelectorKind::extended().to_vec(),
            ..PolicyConfig::default()
        };
        let mut e = PolicyEngine::new(config());
        for i in 0..5u64 {
            e.on_epoch(&epoch(10_000, 4000 + i * 500, 0));
        }
        let state = e.export();
        assert_eq!(state.candidates.len(), 8);
        let mut r = PolicyEngine::restore(config(), &state).unwrap();
        assert_eq!(r.export(), state);
        let next = epoch(10_000, 7000, 0);
        assert_eq!(r.on_epoch(&next), e.on_epoch(&next));
        // The legacy 4-candidate config must reject extended state.
        assert!(PolicyEngine::restore(PolicyConfig::default(), &state).is_none());
    }

    fn spec() -> TenantSpec {
        TenantSpec::record(&rsel_workloads::suite()[0], 7, rsel_workloads::Scale::Test)
    }

    #[test]
    fn non_adaptive_derivation_is_the_identity() {
        let base = PolicyConfig::default();
        let (derived, features) = derive_tenant_policy(&base, &spec());
        assert_eq!(derived.candidates, base.candidates);
        assert!(features.is_none());
    }

    #[test]
    fn adaptive_derivation_is_deterministic_and_prior_leads() {
        let base = PolicyConfig {
            adaptive: true,
            ..PolicyConfig::default()
        };
        let spec = spec();
        let (a, fa) = derive_tenant_policy(&base, &spec);
        let (b, fb) = derive_tenant_policy(&base, &spec);
        assert_eq!(a.candidates, b.candidates, "pure function of its inputs");
        assert_eq!(fa, fb);
        let f = fa.expect("adaptive mode reports features");
        assert_eq!(a.candidates[0], f.prior, "the prior is explored first");
        assert_eq!(a.candidates.len(), f.explore_len as usize);
        assert!(!a.candidates.is_empty());
        assert!(a.candidates.len() <= base.candidates.len());
        // Every derived candidate comes from the configured pool, and
        // none repeats.
        for (i, c) in a.candidates.iter().enumerate() {
            assert!(base.candidates.contains(c));
            assert!(!a.candidates[..i].contains(c));
        }
    }

    #[test]
    fn short_streams_get_truncated_schedules_that_reach_exploit() {
        let spec = spec();
        // An epoch as long as the whole stream: one expected epoch,
        // so the schedule truncates to the prior alone.
        let base = PolicyConfig {
            adaptive: true,
            epoch_len: spec.len(),
            ..PolicyConfig::default()
        };
        let (derived, features) = derive_tenant_policy(&base, &spec);
        let f = features.unwrap();
        assert_eq!(f.expected_epochs, 1);
        assert_eq!(derived.candidates.len(), 1);
        let mut e = PolicyEngine::new(derived);
        assert!(e.exploiting(), "a sole candidate exploits from epoch 0");
        assert_eq!(e.current(), f.prior);
        // Even a collapsing score cannot flicker it back to exploring —
        // there is nothing else to explore.
        e.on_epoch(&epoch(10_000, 9000, 0));
        assert_eq!(e.on_epoch(&epoch(10_000, 100, 0)), None);
        assert!(e.exploiting());
        assert_eq!(e.switches(), 0);
    }

    #[test]
    fn long_streams_keep_the_full_extended_pool() {
        let spec = spec();
        // Tiny epochs: expected epochs far exceed 2 * 8 candidates.
        let base = PolicyConfig {
            adaptive: true,
            epoch_len: 1,
            candidates: SelectorKind::extended().to_vec(),
            ..PolicyConfig::default()
        };
        let (derived, features) = derive_tenant_policy(&base, &spec);
        assert_eq!(derived.candidates.len(), 8, "nothing truncated");
        let f = features.unwrap();
        assert_eq!(f.explore_len, 8);
        assert_eq!(derived.candidates[0], f.prior);
    }
}
