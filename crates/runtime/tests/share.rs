//! Golden determinism tests for share mode: the replicated suite
//! served through the content-addressed region store must stay
//! byte-identical for every worker count — cold, warm-started, under
//! self-modifying-code fault traffic, and under full chaos (churn +
//! faults + checkpoints) — while actually deduplicating the
//! homogeneous replicas' regions.

use rsel_runtime::{ChurnConfig, ServeConfig, ServeOutcome, TenantSpec, serve, serve_with};
use rsel_workloads::Scale;

const SEED: u64 = 2005;

/// The twelve-workload suite, each workload replicated twice —
/// homogeneous pairs that should dedup against each other.
fn replicated_suite() -> Vec<TenantSpec> {
    TenantSpec::replicate(TenantSpec::record_suite(SEED, Scale::Test), 2)
}

fn shared_config() -> ServeConfig {
    ServeConfig {
        share: true,
        ..ServeConfig::default()
    }
}

fn chaos_shared_config() -> ServeConfig {
    let mut config = ServeConfig {
        share: true,
        churn: ChurnConfig {
            seed: SEED,
            arrival_spread: 6,
            max_disconnects: 2,
            max_gap: 3,
            crash_percent: 50,
        },
        checkpoint_every: 2,
        quarantine_penalty: 4,
        ..ServeConfig::default()
    };
    config.sim.faults.seed = SEED;
    config.sim.faults.smc_write_ppm = 2_000;
    config.sim.faults.flush_wave_ppm = 500;
    config.sim.faults.counter_fault_ppm = 500;
    config
}

fn assert_identical(one: &ServeOutcome, eight: &ServeOutcome, what: &str) {
    assert_eq!(
        one.report.to_json(),
        eight.report.to_json(),
        "{what}: ServeReport JSON must not depend on the worker count"
    );
    assert_eq!(one.report, eight.report, "{what}: report diverged");
    assert_eq!(one.run_reports, eight.run_reports, "{what}: runs diverged");
    assert_eq!(one.snapshot, eight.snapshot, "{what}: snapshot diverged");
}

#[test]
fn cold_shared_serving_is_identical_and_dedups() {
    let specs = replicated_suite();
    let config = shared_config();
    let one = serve(&specs, &config, 1).unwrap();
    let eight = serve(&specs, &config, 8).unwrap();
    assert_identical(&one, &eight, "cold shared");

    let rep = &one.report;
    assert!(rep.share_active);
    assert!(rep.unique_bytes > 0);
    assert!(rep.shared_refs > 0, "paired replicas must share entries");
    assert!(
        rep.dedup_ratio() > 1.2,
        "doubled suite must dedup: {}",
        rep.dedup_ratio()
    );
    assert!(rep.unique_bytes <= rep.logical_bytes);
    for s in &rep.shards {
        assert!(s.unique_bytes <= s.logical_bytes, "shard {}", s.shard);
    }

    // The payoff against the unshared serve of the same population:
    // pressure (driven by unique bytes, which dedup halves) evicts
    // fewer regions.
    let unshared = serve(&specs, &ServeConfig::default(), 8).unwrap();
    let evicted =
        |o: &ServeOutcome| -> u64 { o.report.shards.iter().map(|s| s.evicted_regions).sum() };
    assert!(
        evicted(&one) <= evicted(&unshared),
        "sharing must not increase pressure evictions: {} vs {}",
        evicted(&one),
        evicted(&unshared)
    );
}

#[test]
fn warm_shared_serving_is_identical_across_worker_counts() {
    // Snapshots store per-tenant regions (the RSNP format is unchanged
    // by share mode); a warm start re-dedups them on load.
    let specs = replicated_suite();
    let config = shared_config();
    let snapshot = serve(&specs, &config, 2).unwrap().snapshot;
    let warm1 = serve_with(&specs, &config, 1, Some(&snapshot)).unwrap();
    let warm8 = serve_with(&specs, &config, 8, Some(&snapshot)).unwrap();
    assert_identical(&warm1, &warm8, "warm shared");
    assert!(warm1.report.warm_started);
    assert!(warm1.report.warm_regions_restored > 0);
    assert!(
        warm1.report.dedup_ratio() > 1.2,
        "restored replicas re-dedup: {}",
        warm1.report.dedup_ratio()
    );
}

#[test]
fn smc_faulted_shared_serving_is_identical_across_worker_counts() {
    // Self-modifying code invalidates regions mid-flight; the share
    // map must release the dead refs and the serve must stay
    // byte-identical for every worker count.
    let specs = replicated_suite();
    let mut config = shared_config();
    config.sim.faults.seed = SEED;
    config.sim.faults.smc_write_ppm = 2_000;
    let one = serve(&specs, &config, 1).unwrap();
    let eight = serve(&specs, &config, 8).unwrap();
    assert_identical(&one, &eight, "SMC shared");
    assert!(
        one.report.smc_invalidated_regions() > 0,
        "the fault schedule must actually strike at this rate"
    );
    assert!(one.report.dedup_ratio() > 1.0);
}

#[test]
fn chaotic_shared_serving_is_identical_across_worker_counts() {
    // The full stack at once: sharing, churn (staggered arrivals,
    // disconnects, crashes), periodic checkpoints, fault traffic, and
    // quarantine retries enabled. Every departure path must release
    // its store refs (the barrier re-checks store/map consistency in
    // this debug build) and the whole serve must stay byte-identical.
    let specs = replicated_suite();
    let config = chaos_shared_config();
    let one = serve(&specs, &config, 1).unwrap();
    let eight = serve(&specs, &config, 8).unwrap();
    assert_identical(&one, &eight, "chaotic shared");

    let rep = &one.report;
    assert!(rep.churn_active && rep.share_active);
    assert!(rep.disconnects() + rep.crashes() > 0, "somebody churned");
    // Staggered arrivals can leave the peak-unique barrier with no
    // replica overlap, so the observed ratio may legitimately be 1.0
    // here; the calm goldens above assert the stronger bound.
    assert!(rep.unique_bytes > 0);
    assert!(rep.dedup_ratio() >= 1.0, "{}", rep.dedup_ratio());
    assert_eq!(rep.quarantined_tenants(), 0, "clean path");

    // And identically again from a warm start over the chaos schedule.
    let calm = serve(&specs, &shared_config(), 2).unwrap();
    let warm1 = serve_with(&specs, &config, 1, Some(&calm.snapshot)).unwrap();
    let warm8 = serve_with(&specs, &config, 8, Some(&calm.snapshot)).unwrap();
    assert_identical(&warm1, &warm8, "warm chaotic shared");
    assert!(warm1.report.warm_started && warm1.report.churn_active);
}
