//! Property tests for the snapshot loader's robustness, mirroring the
//! compact-stream suite in `rsel-trace`.
//!
//! `load_snapshot` is fed corrupted inputs — truncations at every
//! possible length and single-bit flips at arbitrary positions — and
//! must always either return a typed [`SnapshotError`]
//! (rsel_runtime::SnapshotError) or a snapshot that is fully valid:
//! the right tenant population, every region rebuildable, every
//! session restorable. It must never panic and never silently yield a
//! partial restore.

use proptest::prelude::*;
use rsel_runtime::snapshot::{load_snapshot, save_snapshot};
use rsel_runtime::{PolicyConfig, PolicyEngine, ServeConfig, TenantSession, TenantSpec, serve};
use rsel_workloads::{Scale, suite};
use std::sync::OnceLock;

/// One recorded two-tenant serving run and its snapshot bytes, built
/// once — the corpus every corruption case perturbs.
fn fixture() -> &'static (Vec<TenantSpec>, Vec<u8>) {
    static FIX: OnceLock<(Vec<TenantSpec>, Vec<u8>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(2)
            .map(|w| TenantSpec::record(w, 2005, Scale::Test))
            .collect();
        let out = serve(&specs, &ServeConfig::default(), 1);
        let mut buf = Vec::new();
        save_snapshot(&out.snapshot, &mut buf).unwrap();
        (specs, buf)
    })
}

proptest! {
    /// Every proper prefix of a snapshot file is rejected with a typed
    /// error; no truncation parses as a smaller-but-valid snapshot.
    #[test]
    fn truncation_always_errors(cut in 0usize..1 << 16) {
        let (specs, buf) = fixture();
        let cut = cut % buf.len();
        let r = load_snapshot(specs, &PolicyConfig::default(), &buf[..cut]);
        prop_assert!(r.is_err(), "prefix of {cut} bytes must not parse");
    }

    /// A single flipped bit anywhere in the file never panics the
    /// loader, and whatever parses is fully valid: the right tenant
    /// count, and every tenant restorable into a live session.
    #[test]
    fn bit_flips_error_or_stay_fully_valid(byte in 0usize..1 << 16, bit in 0u8..8) {
        let (specs, buf) = fixture();
        let mut buf = buf.clone();
        let byte = byte % buf.len();
        buf[byte] ^= 1 << bit;
        let config = ServeConfig::default();
        match load_snapshot(specs, &config.policy, buf.as_slice()) {
            Err(_) => {} // typed rejection is always acceptable
            Ok(snap) => {
                // The flip hit a payload byte the format cannot
                // distinguish from legitimate data (another valid
                // address, a different score). The snapshot must still
                // restore completely: every engine and every session.
                prop_assert_eq!(snap.tenants.len(), specs.len(),
                    "accepted snapshot silently changed population");
                for (t, (spec, ts)) in specs.iter().zip(&snap.tenants).enumerate() {
                    let engine = PolicyEngine::restore(config.policy.clone(), &ts.policy);
                    prop_assert!(engine.is_some(), "tenant {} engine", t);
                    let session = TenantSession::restore(
                        t as u16, spec, ts, &config.sim, config.shard_count,
                    );
                    prop_assert!(session.is_ok(), "tenant {} session", t);
                    prop_assert_eq!(
                        session.unwrap().region_snapshots().len(),
                        ts.regions.len(),
                        "accepted snapshot dropped regions"
                    );
                }
            }
        }
    }

    /// Appending garbage after a well-formed snapshot is detected: a
    /// corrupted count field can never make the loader stop early and
    /// accept the rest as slack.
    #[test]
    fn trailing_bytes_rejected(extra in 1usize..16) {
        let (specs, buf) = fixture();
        let mut buf = buf.clone();
        buf.extend(vec![0u8; extra]);
        let r = load_snapshot(specs, &PolicyConfig::default(), buf.as_slice());
        prop_assert!(r.is_err(), "trailing {extra} bytes must be rejected");
    }
}

#[test]
fn pristine_snapshot_still_round_trips() {
    let (specs, buf) = fixture();
    let snap = load_snapshot(specs, &PolicyConfig::default(), buf.as_slice()).unwrap();
    let mut again = Vec::new();
    save_snapshot(&snap, &mut again).unwrap();
    assert_eq!(&again, buf, "load ∘ save is the identity on valid files");
}
