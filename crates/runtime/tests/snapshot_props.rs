//! Property tests for the snapshot loader's robustness, mirroring the
//! compact-stream suite in `rsel-trace`.
//!
//! `load_snapshot` is fed corrupted inputs — truncations at every
//! possible length and single-bit flips at arbitrary positions — and
//! must always either return a typed [`SnapshotError`]
//! (rsel_runtime::SnapshotError) or a snapshot that is fully valid:
//! the right tenant population, every region rebuildable, every
//! session restorable. It must never panic and never silently yield a
//! partial restore.

use proptest::prelude::*;
use rsel_runtime::snapshot::{load_snapshot, load_warm_start, save_snapshot};
use rsel_runtime::{
    PolicyConfig, PolicyEngine, ServeConfig, TenantSession, TenantSpec, serve, serve_warm,
};
use rsel_workloads::{Scale, suite};
use std::sync::OnceLock;

/// One recorded two-tenant serving run and its snapshot bytes, built
/// once — the corpus every corruption case perturbs.
fn fixture() -> &'static (Vec<TenantSpec>, Vec<u8>) {
    static FIX: OnceLock<(Vec<TenantSpec>, Vec<u8>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(2)
            .map(|w| TenantSpec::record(w, 2005, Scale::Test))
            .collect();
        let out = serve(&specs, &ServeConfig::default(), 1).unwrap();
        let mut buf = Vec::new();
        save_snapshot(&out.snapshot, &mut buf).unwrap();
        (specs, buf)
    })
}

proptest! {
    /// Every proper prefix of a snapshot file is rejected with a typed
    /// error; no truncation parses as a smaller-but-valid snapshot.
    #[test]
    fn truncation_always_errors(cut in 0usize..1 << 16) {
        let (specs, buf) = fixture();
        let cut = cut % buf.len();
        let r = load_snapshot(specs, &PolicyConfig::default(), &buf[..cut]);
        prop_assert!(r.is_err(), "prefix of {cut} bytes must not parse");
    }

    /// A single flipped bit anywhere in the file never panics the
    /// loader, and whatever parses is fully valid: the right tenant
    /// count, and every tenant restorable into a live session.
    #[test]
    fn bit_flips_error_or_stay_fully_valid(byte in 0usize..1 << 16, bit in 0u8..8) {
        let (specs, buf) = fixture();
        let mut buf = buf.clone();
        let byte = byte % buf.len();
        buf[byte] ^= 1 << bit;
        let config = ServeConfig::default();
        match load_snapshot(specs, &config.policy, buf.as_slice()) {
            Err(_) => {} // typed rejection is always acceptable
            Ok(snap) => {
                // The flip hit a payload byte the format cannot
                // distinguish from legitimate data (another valid
                // address, a different score). The snapshot must still
                // restore completely: every engine and every session.
                prop_assert_eq!(snap.tenants.len(), specs.len(),
                    "accepted snapshot silently changed population");
                for (t, (spec, ts)) in specs.iter().zip(&snap.tenants).enumerate() {
                    let engine = PolicyEngine::restore(config.policy.clone(), &ts.policy);
                    prop_assert!(engine.is_some(), "tenant {} engine", t);
                    let session = TenantSession::restore(
                        t as u16, spec, ts, &config.sim, config.shard_count,
                    );
                    prop_assert!(session.is_ok(), "tenant {} session", t);
                    prop_assert_eq!(
                        session.unwrap().region_snapshots().len(),
                        ts.regions.len(),
                        "accepted snapshot dropped regions"
                    );
                }
            }
        }
    }

    /// The lenient loader obeys the same no-partial-restore contract
    /// under bit flips: it either fails structurally, or returns a
    /// warm start whose restored slots all build live sessions and
    /// whose rejection count matches the empty slots exactly.
    #[test]
    fn lenient_loader_degrades_but_never_lies(byte in 0usize..1 << 16, bit in 0u8..8) {
        let (specs, buf) = fixture();
        let mut buf = buf.clone();
        let byte = byte % buf.len();
        buf[byte] ^= 1 << bit;
        let config = ServeConfig::default();
        if let Ok(warm) = load_warm_start(specs, &config.policy, buf.as_slice()) {
            prop_assert_eq!(warm.tenants.len(), specs.len());
            let empty = warm.tenants.iter().filter(|t| t.is_none()).count() as u64;
            prop_assert_eq!(warm.rejected, empty, "rejection count must match empty slots");
            for (t, (spec, slot)) in specs.iter().zip(&warm.tenants).enumerate() {
                let Some(ts) = slot else { continue };
                prop_assert!(
                    PolicyEngine::restore(config.policy.clone(), &ts.policy).is_some(),
                    "tenant {} engine", t
                );
                prop_assert!(
                    TenantSession::restore(t as u16, spec, ts, &config.sim, config.shard_count)
                        .is_ok(),
                    "tenant {} session", t
                );
            }
        } // structural rejection is always acceptable
    }

    /// Appending garbage after a well-formed snapshot is detected: a
    /// corrupted count field can never make the loader stop early and
    /// accept the rest as slack.
    #[test]
    fn trailing_bytes_rejected(extra in 1usize..16) {
        let (specs, buf) = fixture();
        let mut buf = buf.clone();
        buf.extend(vec![0u8; extra]);
        let r = load_snapshot(specs, &PolicyConfig::default(), buf.as_slice());
        prop_assert!(r.is_err(), "trailing {extra} bytes must be rejected");
    }
}

#[test]
fn pristine_snapshot_still_round_trips() {
    let (specs, buf) = fixture();
    let snap = load_snapshot(specs, &PolicyConfig::default(), buf.as_slice()).unwrap();
    let mut again = Vec::new();
    save_snapshot(&snap, &mut again).unwrap();
    assert_eq!(&again, buf, "load ∘ save is the identity on valid files");
}

#[test]
fn lenient_loader_matches_strict_on_pristine_files() {
    let (specs, buf) = fixture();
    let policy = PolicyConfig::default();
    let strict = load_snapshot(specs, &policy, buf.as_slice()).unwrap();
    let warm = load_warm_start(specs, &policy, buf.as_slice()).unwrap();
    assert_eq!(warm.rejected, 0);
    assert_eq!(warm.restored_tenants(), specs.len());
    for (ts, slot) in strict.tenants.iter().zip(&warm.tenants) {
        assert_eq!(slot.as_ref(), Some(ts));
    }
}

#[test]
fn stale_policy_config_cold_starts_tenants_instead_of_failing() {
    // The operator changed the candidate list since the snapshot was
    // taken. The strict loader rejects the whole file; the lenient one
    // degrades every mismatched tenant to a cold start and the serve
    // still completes — the graceful path the serve bin takes by
    // default.
    let (specs, buf) = fixture();
    let mut stale = ServeConfig::default();
    stale.policy.candidates.truncate(2);
    assert!(
        load_snapshot(specs, &stale.policy, buf.as_slice()).is_err(),
        "strict loading must hard-reject a candidate-list mismatch"
    );
    let warm = load_warm_start(specs, &stale.policy, buf.as_slice()).unwrap();
    assert_eq!(warm.rejected, specs.len() as u64, "every tenant is stale");
    assert_eq!(warm.restored_tenants(), 0);
    let out = serve_warm(specs, &stale, 2, &warm).unwrap();
    assert_eq!(out.report.warm_rejected_tenants, specs.len() as u64);
    assert_eq!(out.report.warm_regions_restored, 0);
    for t in &out.report.tenants {
        assert!(t.total_insts > 0, "{} still served cold", t.workload);
    }
}
