//! Property tests for the churn lifecycle generator: every seed, knob
//! combination, tenant id, and horizon must yield a schedule that
//! satisfies the lifecycle invariants — events strictly increasing by
//! epoch (no reconnect can precede its disconnect), every offline gap
//! in `[1, max_gap]`, at most one crash, no more disconnects than
//! configured, and the arrival within the configured spread — and
//! generation must be a pure function of its inputs.

use proptest::prelude::*;
use rsel_runtime::{ChurnConfig, TenantLifecycle};

proptest! {
    #[test]
    fn any_seed_yields_a_valid_lifecycle_schedule(
        seed in any::<u64>(),
        arrival_spread in 0u64..32,
        max_disconnects in 0u32..8,
        max_gap in 1u64..16,
        crash_percent in 0u8..=100,
        tenant in 0u16..256,
        horizon in 0u64..64,
    ) {
        let cfg = ChurnConfig {
            seed,
            arrival_spread,
            max_disconnects,
            max_gap,
            crash_percent,
        };
        prop_assert!(cfg.check().is_ok(), "these knob ranges are all valid");
        let l = TenantLifecycle::generate(&cfg, tenant, horizon);
        if let Err(why) = l.check(&cfg) {
            prop_assert!(false, "invalid schedule ({why}): {l:?}");
        }
        // Events fit strictly inside the tenant's lifetime, so each
        // can actually fire before the stream runs dry.
        prop_assert!(l.events.len() as u64 <= horizon.saturating_sub(1));
        for e in &l.events {
            prop_assert!(e.at_epoch >= 1 && e.at_epoch < horizon);
        }
        // A pure function of (config, tenant, horizon).
        let again = TenantLifecycle::generate(&cfg, tenant, horizon);
        prop_assert_eq!(l, again);
    }

    /// The inert configuration (churn disabled) always produces the
    /// trivial lifecycle, whatever the seed — the guarantee that a
    /// churn-free serve is byte-identical to the pre-churn scheduler.
    #[test]
    fn inert_configs_generate_trivial_lifecycles(
        seed in any::<u64>(),
        tenant in 0u16..256,
        horizon in 0u64..64,
    ) {
        let cfg = ChurnConfig { seed, ..ChurnConfig::default() };
        prop_assert!(!cfg.active());
        let l = TenantLifecycle::generate(&cfg, tenant, horizon);
        prop_assert_eq!(l.arrival_round, 0);
        prop_assert!(l.events.is_empty());
    }
}
