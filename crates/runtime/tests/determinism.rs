//! Golden determinism and acceptance tests for the serving runtime.
//!
//! The full twelve-tenant suite is served at test scale with the
//! default configuration, once serially and once on eight workers; the
//! [`ServeReport`] JSON, the aggregate report, and every per-tenant
//! [`RunReport`] must be byte-for-byte / structurally identical. The
//! same run must exhibit the behaviours the runtime exists to produce:
//! a full active set, shard pressure, backpressure, and adaptive
//! selector switches.

use rsel_runtime::{ChurnConfig, ServeConfig, ServeOutcome, TenantSpec, serve, serve_with};
use rsel_workloads::Scale;

const SEED: u64 = 2005;

fn run(jobs: usize) -> ServeOutcome {
    let specs = TenantSpec::record_suite(SEED, Scale::Test);
    serve(&specs, &ServeConfig::default(), jobs).unwrap()
}

/// The full chaos schedule the golden tests serve under: churn
/// (staggered arrivals, disconnects, crashes), periodic checkpoints,
/// and fault traffic (SMC + flush waves + counter faults) all at once.
fn chaos_config() -> ServeConfig {
    let mut config = ServeConfig {
        churn: ChurnConfig {
            seed: SEED,
            arrival_spread: 6,
            max_disconnects: 2,
            max_gap: 3,
            crash_percent: 50,
        },
        checkpoint_every: 2,
        ..ServeConfig::default()
    };
    config.sim.faults.seed = SEED;
    config.sim.faults.smc_write_ppm = 2_000;
    config.sim.faults.flush_wave_ppm = 500;
    config.sim.faults.counter_fault_ppm = 500;
    config
}

#[test]
fn serial_and_parallel_runs_are_identical() {
    let serial = run(1);
    let parallel = run(8);
    // Byte-identical JSON, structurally identical report.
    assert_eq!(
        serial.report.to_json(),
        parallel.report.to_json(),
        "ServeReport JSON must not depend on the worker count"
    );
    assert_eq!(serial.report, parallel.report);
    // Every tenant's full run report matches too — down to per-region
    // stats, resilience counters, and domination analysis.
    assert_eq!(serial.run_reports.len(), parallel.run_reports.len());
    for (t, (a, b)) in serial
        .run_reports
        .iter()
        .zip(&parallel.run_reports)
        .enumerate()
    {
        assert_eq!(a, b, "tenant {t} diverged across worker counts");
    }
    // The captured snapshot is part of the deterministic outcome.
    assert_eq!(serial.snapshot, parallel.snapshot);
}

#[test]
fn warm_started_runs_are_identical_across_worker_counts() {
    // The core invariant must survive a warm start: a run restored
    // from a snapshot is byte-identical for every worker count.
    let specs = TenantSpec::record_suite(SEED, Scale::Test);
    let config = ServeConfig::default();
    let snapshot = serve(&specs, &config, 2).unwrap().snapshot;
    let warm1 = serve_with(&specs, &config, 1, Some(&snapshot)).unwrap();
    let warm8 = serve_with(&specs, &config, 8, Some(&snapshot)).unwrap();
    assert!(warm1.report.warm_started && warm8.report.warm_started);
    assert!(warm1.report.warm_regions_restored > 0);
    assert_eq!(
        warm1.report.to_json(),
        warm8.report.to_json(),
        "warm ServeReport JSON must not depend on the worker count"
    );
    assert_eq!(warm1.report, warm8.report);
    assert_eq!(warm1.run_reports, warm8.run_reports);
    assert_eq!(warm1.snapshot, warm8.snapshot);
}

#[test]
fn smc_faulted_runs_are_identical_across_worker_counts() {
    // The robustness invariant: a serve under self-modifying-code
    // traffic is still byte-identical for every worker count, because
    // each tenant's fault schedule is seeded from the tenant id alone.
    let specs = TenantSpec::record_suite(SEED, Scale::Test);
    let mut config = ServeConfig::default();
    config.sim.faults.seed = SEED;
    config.sim.faults.smc_write_ppm = 2_000;
    let one = serve(&specs, &config, 1).unwrap();
    let eight = serve(&specs, &config, 8).unwrap();
    assert_eq!(
        one.report.to_json(),
        eight.report.to_json(),
        "faulted ServeReport JSON must not depend on the worker count"
    );
    assert_eq!(one.report, eight.report);
    assert_eq!(one.run_reports, eight.run_reports);
    assert_eq!(one.snapshot, eight.snapshot);
    assert!(
        one.report.smc_invalidated_regions() > 0,
        "the fault schedule must actually strike at this rate"
    );
    assert!(
        one.report.tenants.iter().any(|t| t.smc_dips > 0),
        "invalidation waves must dent some hit-rate curve"
    );

    // The invariant survives warm-starting from the faulted snapshot
    // (which carries each tenant's blacklist state).
    let warm1 = serve_with(&specs, &config, 1, Some(&one.snapshot)).unwrap();
    let warm8 = serve_with(&specs, &config, 8, Some(&one.snapshot)).unwrap();
    assert_eq!(
        warm1.report.to_json(),
        warm8.report.to_json(),
        "warm faulted ServeReport JSON must not depend on the worker count"
    );
    assert_eq!(warm1.report, warm8.report);
    assert_eq!(warm1.run_reports, warm8.run_reports);
    assert_eq!(warm1.snapshot, warm8.snapshot);
}

#[test]
fn chaotic_runs_are_identical_across_worker_counts() {
    // The tentpole robustness golden: the full suite served under
    // churn (staggered arrivals, mid-run disconnects reconnecting warm
    // from their checkpoints, crashes recovering from their last
    // checkpoint) *and* fault traffic, byte-identical for every worker
    // count — cold and warm.
    let specs = TenantSpec::record_suite(SEED, Scale::Test);
    let config = chaos_config();
    let one = serve(&specs, &config, 1).unwrap();
    let eight = serve(&specs, &config, 8).unwrap();
    assert_eq!(
        one.report.to_json(),
        eight.report.to_json(),
        "chaotic ServeReport JSON must not depend on the worker count"
    );
    assert_eq!(one.report, eight.report);
    assert_eq!(one.run_reports, eight.run_reports);
    assert_eq!(one.snapshot, eight.snapshot);

    // The schedule actually churned, recovery actually ran, and the
    // clean path quarantined nobody.
    let rep = &one.report;
    assert!(rep.churn_active);
    assert!(
        rep.disconnects() > 0,
        "nobody disconnected: {:?}",
        rep.tenants
    );
    assert!(rep.crashes() > 0, "nobody crashed: {:?}", rep.tenants);
    assert_eq!(rep.reconnects(), rep.disconnects() + rep.crashes());
    assert!(rep.checkpoints_taken() > 0);
    assert!(rep.checkpoint_bytes() > 0);
    assert_eq!(rep.quarantined_tenants(), 0, "clean path");
    // Every tenant — including the crashed and reconnected ones —
    // still finished its whole workload.
    let calm = run(1);
    for (chaos, base) in rep.tenants.iter().zip(&calm.report.tenants) {
        assert!(
            chaos.total_insts >= base.total_insts,
            "tenant {} lost work under chaos",
            chaos.tenant
        );
    }

    // And the whole schedule replays identically from a warm start.
    let warm1 = serve_with(&specs, &config, 1, Some(&calm.snapshot)).unwrap();
    let warm8 = serve_with(&specs, &config, 8, Some(&calm.snapshot)).unwrap();
    assert_eq!(
        warm1.report.to_json(),
        warm8.report.to_json(),
        "warm chaotic ServeReport JSON must not depend on the worker count"
    );
    assert_eq!(warm1.report, warm8.report);
    assert_eq!(warm1.run_reports, warm8.run_reports);
    assert_eq!(warm1.snapshot, warm8.snapshot);
    assert!(warm1.report.warm_started && warm1.report.churn_active);
    assert_eq!(warm1.report.quarantined_tenants(), 0);
}

#[test]
fn default_run_exhibits_the_serving_behaviours() {
    let out = run(8);
    let rep = &out.report;

    // All twelve tenants served to completion.
    assert_eq!(rep.tenants.len(), 12);
    for t in &rep.tenants {
        assert!(t.total_insts > 0, "{} never ran", t.workload);
        assert!(t.epochs > 0);
        assert!(t.finished_round >= t.admitted_round);
    }

    // The active set actually filled: >= 8 concurrent tenant sessions
    // over the shared sharded cache.
    assert!(
        rep.queue.peak_active >= 8,
        "peak_active = {}",
        rep.queue.peak_active
    );
    // The bounded queue was exercised.
    assert!(rep.queue.peak_queue_depth > 0);
    assert!(
        rep.queue.deferred_tenant_rounds > 0,
        "twelve arrivals behind a two-slot queue must defer"
    );

    // Shard pressure fired and evicted regions; the evictions surface
    // in tenants' resilience stats exactly like any pressure event.
    assert!(rep.pressure_waves() > 0, "no shard ever overflowed");
    assert!(
        rep.shed_actions() >= rep.pressure_waves(),
        "every wave sheds at least once"
    );
    let evicted: u64 = rep.shards.iter().map(|s| s.evicted_regions).sum();
    let shed: u64 = rep.tenants.iter().map(|t| t.pressure_evicted).sum();
    assert!(evicted > 0);
    assert_eq!(evicted, shed, "shard ledger and tenant ledger agree");
    let resilience: u64 = out
        .run_reports
        .iter()
        .map(|r| r.resilience.pressure_evicted_regions)
        .sum();
    assert_eq!(shed, resilience);

    // Multiple tenants shared shards within single rounds.
    assert!(rep.contended_rounds() > 0, "no shard was ever shared");

    // The policy engine switched selectors — including on gcc, the
    // phase-shifting workload.
    assert!(!rep.switches.is_empty());
    assert!(
        rep.switches.iter().any(|s| s.workload == "gcc"),
        "gcc (phased) never switched"
    );
    // Every switch log entry is attributable to a served tenant.
    for s in &rep.switches {
        assert!((s.tenant as usize) < rep.tenants.len());
        assert_ne!(s.from, s.to, "a switch must change the selector");
    }

    // Throughput is reported in simulated instructions per round.
    assert!(rep.insts_per_round() > 0.0);
    let sum: u64 = rep.tenants.iter().map(|t| t.total_insts).sum();
    assert_eq!(rep.total_insts, sum);
}

#[test]
fn shard_capacity_bounds_hold_at_every_report() {
    // After the final barrier every shard must be at or under budget:
    // pressure waves shed until the shard fits (or nothing is left).
    let out = run(4);
    for s in &out.report.shards {
        assert!(
            s.final_bytes <= out.report.shard_capacity,
            "shard {} closed over budget ({} > {})",
            s.shard,
            s.final_bytes,
            out.report.shard_capacity
        );
    }
}

#[test]
fn json_is_well_formed_enough_to_diff() {
    let rep = run(2).report;
    let json = rep.to_json();
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces"
    );
    for key in [
        "\"bench\": \"serve\"",
        "\"rounds\":",
        "\"insts_per_round\":",
        "\"warm_started\": false",
        "\"warm_regions_restored\": 0",
        "\"warm_rejected_tenants\": 0",
        "\"smc_write_ppm\": 0",
        "\"fault_seed\": 0",
        "\"flush_wave_ppm\": 0",
        "\"counter_fault_ppm\": 0",
        "\"churn_active\": false",
        "\"churn_seed\": 0",
        "\"checkpoint_every\": 0",
        "\"shed_arrivals\": 0",
        "\"admission_retries\": 0",
        "\"smc_invalidated_regions\": 0",
        "\"blacklisted_targets\": 0",
        "\"disconnects\": 0",
        "\"reconnects\": 0",
        "\"crashes\": 0",
        "\"recovered_epochs\": 0",
        "\"quarantined_tenants\": 0",
        "\"checkpoints_taken\": 0",
        "\"checkpoint_bytes\": 0",
        "\"quarantined\": false",
        "\"max_dip_depth\":",
        "\"pressure_waves\":",
        "\"shed_actions\":",
        "\"first_exploit_round\":",
        "\"tenants\":",
        "\"shards\":",
        "\"switches\":",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    // Nothing wall-clock or worker-count shaped may appear.
    assert!(!json.contains("jobs"), "worker count must not leak");
    assert!(!json.contains("_ms"), "wall time must not leak");
}
