//! Warm-start acceptance tests: a snapshot restores the serving state
//! exactly, and a warm-started session reaches the cold run's final
//! hit rate in strictly fewer epochs.

use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;
use rsel_runtime::snapshot::{ServeSnapshot, TenantSnapshot, load_snapshot, save_snapshot};
use rsel_runtime::{PolicyConfig, PolicyEngine, ServeConfig, TenantSession, TenantSpec, serve};
use rsel_workloads::{Scale, suite};

const SEED: u64 = 2005;

#[test]
fn snapshot_restores_selector_scores_and_regions_exactly() {
    let specs = TenantSpec::record_suite(SEED, Scale::Test);
    let config = ServeConfig::default();
    let out = serve(&specs, &config, 2).unwrap();

    // Through bytes and back: the loaded snapshot is the saved one.
    let mut buf = Vec::new();
    save_snapshot(&out.snapshot, &mut buf).unwrap();
    let loaded = load_snapshot(&specs, &config.policy, buf.as_slice()).unwrap();
    assert_eq!(loaded, out.snapshot);

    for (t, (spec, snap)) in specs.iter().zip(&loaded.tenants).enumerate() {
        // The policy engine restores to exactly the exported state.
        let engine = PolicyEngine::restore(config.policy.clone(), &snap.policy)
            .expect("loader-validated state restores");
        assert_eq!(engine.export(), snap.policy, "tenant {t} policy drifted");
        assert_eq!(engine.current(), snap.selector);
        assert_eq!(
            engine.switches(),
            out.report.tenants[t].switches,
            "switch count carries across the restore"
        );
        // The session restores every cached region, re-derived against
        // the program but shape-identical to what was saved.
        let session = TenantSession::restore(t as u16, spec, snap, &config.sim, config.shard_count)
            .expect("loader-validated snapshot restores");
        assert_eq!(session.kind(), snap.selector, "tenant {t} selector");
        assert_eq!(
            session.region_snapshots(),
            snap.regions,
            "tenant {t} cache contents drifted through the round trip"
        );
    }
}

/// Cumulative hit rate after each epoch of a session, driven to
/// completion on a fixed selector.
fn hit_rate_curve(session: &mut TenantSession<'_>, epoch_len: usize) -> Vec<f64> {
    let mut curve = Vec::new();
    while !session.finished() {
        session.run_epoch(epoch_len);
        let total = session.total_insts();
        let rate = if total == 0 {
            0.0
        } else {
            session.cache_insts() as f64 / total as f64
        };
        curve.push(rate);
    }
    curve
}

/// First epoch (1-based) at which the curve reaches `target`, if it
/// ever does.
fn epochs_to_reach(curve: &[f64], target: f64) -> Option<usize> {
    curve
        .iter()
        .position(|&r| r >= target - 1e-12)
        .map(|i| i + 1)
}

#[test]
fn warm_session_reaches_cold_final_hit_rate_in_fewer_epochs() {
    // For each suite workload: run one tenant cold to completion, then
    // warm-start a fresh session from its final cache and measure how
    // many epochs each needs to reach the cold run's final hit rate.
    // The snapshot must pay off on at least one workload (in practice
    // it pays off on nearly all of them).
    let config = SimConfig::default();
    let policy = PolicyConfig::default();
    const EPOCH: usize = 2048;
    let mut faster = 0usize;
    let mut tried = 0usize;
    for w in suite() {
        let spec = TenantSpec::record(&w, SEED, Scale::Test);
        let mut cold = TenantSession::new(0, &spec, SelectorKind::Net, &config, 16);
        let cold_curve = hit_rate_curve(&mut cold, EPOCH);
        let target = *cold_curve.last().unwrap();
        if target == 0.0 || cold_curve.len() < 2 {
            continue; // nothing to learn or too short to compare
        }
        let snap = TenantSnapshot {
            workload: spec.name().to_string(),
            selector: SelectorKind::Net,
            policy: PolicyEngine::new(policy.clone()).export(),
            regions: cold.region_snapshots(),
            blacklist: Vec::new(),
        };
        let mut warm = TenantSession::restore(0, &spec, &snap, &config, 16).unwrap();
        let warm_curve = hit_rate_curve(&mut warm, EPOCH);
        tried += 1;
        let cold_epochs = epochs_to_reach(&cold_curve, target).expect("reaches its own final");
        if epochs_to_reach(&warm_curve, target).is_some_and(|w| w < cold_epochs) {
            faster += 1;
        }
    }
    assert!(tried > 0, "the suite produced comparable workloads");
    assert!(
        faster >= 1,
        "warm start never reached the cold hit rate earlier ({faster}/{tried})"
    );
}

#[test]
fn serve_snapshot_round_trips_through_disk() {
    let specs: Vec<TenantSpec> = suite()
        .iter()
        .take(3)
        .map(|w| TenantSpec::record(w, SEED, Scale::Test))
        .collect();
    let config = ServeConfig::default();
    let out = serve(&specs, &config, 1).unwrap();
    let dir = std::env::temp_dir().join(format!("rsel-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.snap");
    out.snapshot.save_to_path(&path).unwrap();
    let loaded = ServeSnapshot::load_from_path(&specs, &config.policy, &path).unwrap();
    assert_eq!(loaded, out.snapshot);
    std::fs::remove_dir_all(&dir).unwrap();
}
