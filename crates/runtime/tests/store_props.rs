//! Property tests for the content-addressed region store.
//!
//! Two layers. The first drives a [`RegionStore`] directly through
//! arbitrary acquire/release/departure/pressure-wave sequences against
//! a naive mirror model and checks the structural invariants after
//! every step: refcount conservation (the store's refs equal the
//! model's live holdings), no dangling entries (an entry with zero
//! holders must not exist), and `unique_bytes <= logical_bytes` per
//! shard and in total. The second serves small replicated populations
//! with sharing on and off and asserts content parity: when capacity
//! is high enough that pressure never fires, sharing is pure
//! accounting — every tenant's run report and snapshot must be
//! byte-identical to the unshared serve, cold and under crash-heavy
//! churn (the serve itself re-checks store/map consistency at every
//! barrier in debug builds, which these tests run under).

use proptest::prelude::*;
use rsel_runtime::{ChurnConfig, RegionStore, ServeConfig, TenantSpec, serve};
use rsel_workloads::{Scale, suite};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

/// One synthetic store operation. Keys and tenants are drawn from
/// small ranges so sequences actually collide (that is where sharing
/// and the refcount edge cases live).
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Tenant takes a ref on a key (skipped if it already holds one —
    /// a live session never double-acquires).
    Acquire { key: u64, tenant: u16 },
    /// Tenant drops its ref on a key (the store treats unknown keys as
    /// a no-op, so this needs no precondition).
    Release { key: u64, tenant: u16 },
    /// Departure/quarantine/crash teardown: every ref the tenant holds
    /// goes at once, without consulting any session state.
    ReleaseTenant { tenant: u16 },
    /// A pressure wave against one shard down to `capacity` unique
    /// bytes, in either victim order (largest-first or
    /// utility-aware) — the invariants hold for both.
    Wave {
        shard: usize,
        capacity: u64,
        utility: bool,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighting (the vendored prop_oneof has no weight syntax): a
    // selector in 0..8 biases toward acquires so sequences actually
    // build up shared state before tearing it down.
    (
        0u8..8,
        0u64..24,
        0u16..6,
        0usize..4,
        0u64..64,
        any::<bool>(),
    )
        .prop_map(|(pick, key, tenant, shard, capacity, utility)| match pick {
            0..=3 => Op::Acquire { key, tenant },
            4 | 5 => Op::Release { key, tenant },
            6 => Op::ReleaseTenant { tenant },
            _ => Op::Wave {
                shard,
                capacity,
                utility,
            },
        })
}

/// Deterministic size for a synthetic key — content-addressed entries
/// always carry the same byte size for the same key.
fn key_bytes(key: u64) -> u64 {
    key % 7 + 1
}

/// Deterministic shard for a synthetic key (4-shard store).
fn key_shard(key: u64) -> usize {
    (key % 4) as usize
}

proptest! {
    /// Arbitrary op sequences keep the store consistent with a naive
    /// model: same refs, no dangling entries, unique <= logical.
    #[test]
    fn op_sequences_conserve_refcounts(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut store = RegionStore::new(4);
        // The mirror: (shard, key) -> holder set.
        let mut model: BTreeMap<(usize, u64), BTreeSet<u16>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Acquire { key, tenant } => {
                    let shard = key_shard(key);
                    let holders = model.entry((shard, key)).or_default();
                    if holders.insert(tenant) {
                        store.acquire(shard, key, key_bytes(key), tenant);
                    }
                }
                Op::Release { key, tenant } => {
                    let shard = key_shard(key);
                    if let Some(holders) = model.get_mut(&(shard, key)) {
                        if holders.remove(&tenant) && holders.is_empty() {
                            model.remove(&(shard, key));
                        }
                    }
                    store.release(shard, key, tenant);
                }
                Op::ReleaseTenant { tenant } => {
                    let mut expect = 0u64;
                    model.retain(|_, holders| {
                        if holders.remove(&tenant) {
                            expect += 1;
                        }
                        !holders.is_empty()
                    });
                    prop_assert_eq!(store.release_tenant(tenant), expect);
                }
                Op::Wave {
                    shard,
                    capacity,
                    utility,
                } => {
                    let wave = store.plan_wave(shard, capacity, utility);
                    for (key, entry) in &wave {
                        let removed = model.remove(&(shard, *key));
                        prop_assert!(removed.is_some(), "wave evicted an unknown entry");
                        let holders: Vec<u16> = removed.unwrap().into_iter().collect();
                        prop_assert_eq!(&holders, &entry.holders, "holder lists agree");
                    }
                    prop_assert!(store.unique_bytes(shard) <= capacity || wave.is_empty());
                }
            }
            // Structural invariants hold after every single step.
            store.check_invariants();
            let model_refs: u64 = model.values().map(|h| h.len() as u64).sum();
            prop_assert_eq!(store.total_refs(), model_refs, "refcount conservation");
            prop_assert_eq!(store.total_entries(), model.len() as u64, "no dangling entries");
            for shard in 0..4 {
                prop_assert!(store.unique_bytes(shard) <= store.logical_bytes(shard));
            }
        }
        // Peaks sampled at a barrier keep the same ordering.
        store.end_round();
        let t = store.totals();
        prop_assert!(t.unique_bytes <= t.logical_bytes);
    }
}

/// Two recorded workloads, built once for every serve-level case.
fn specs() -> &'static Vec<TenantSpec> {
    static FIX: OnceLock<Vec<TenantSpec>> = OnceLock::new();
    FIX.get_or_init(|| {
        suite()
            .iter()
            .take(2)
            .map(|w| TenantSpec::record(w, 2005, Scale::Test))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Share-on vs share-off content parity: with capacity high enough
    /// that pressure never fires, sharing must not change any tenant's
    /// execution — same run reports, same snapshot regions — for any
    /// replica count and worker count.
    #[test]
    fn sharing_preserves_region_content(replicas in 1usize..4, jobs in 1usize..5) {
        let population = TenantSpec::replicate(specs().clone(), replicas);
        let off = ServeConfig {
            shard_capacity: u64::MAX,
            ..ServeConfig::default()
        };
        let on = ServeConfig { share: true, ..off.clone() };
        let base = serve(&population, &off, jobs).unwrap();
        let shared = serve(&population, &on, jobs).unwrap();
        prop_assert_eq!(&base.run_reports, &shared.run_reports);
        prop_assert_eq!(&base.snapshot, &shared.snapshot);
        if replicas > 1 {
            prop_assert!(
                shared.report.dedup_ratio() > 1.0,
                "replicas must share: {}",
                shared.report.dedup_ratio()
            );
        }
    }

    /// Crash-heavy churn with sharing on: departures, crash recovery,
    /// and re-admissions must release and re-acquire refs without ever
    /// tripping the barrier's store/map consistency checks (which run
    /// under debug assertions in this build), and stay worker-count
    /// deterministic.
    #[test]
    fn churned_shared_serving_stays_consistent(seed in 0u64..32) {
        let population = TenantSpec::replicate(specs().clone(), 2);
        let config = ServeConfig {
            share: true,
            churn: ChurnConfig {
                seed,
                arrival_spread: 3,
                max_disconnects: 2,
                max_gap: 2,
                crash_percent: 75,
            },
            checkpoint_every: 2,
            ..ServeConfig::default()
        };
        let one = serve(&population, &config, 1).unwrap();
        let four = serve(&population, &config, 4).unwrap();
        prop_assert_eq!(&one.report, &four.report);
        prop_assert_eq!(&one.run_reports, &four.run_reports);
        prop_assert_eq!(&one.snapshot, &four.snapshot);
        for t in &one.report.tenants {
            prop_assert!(!t.quarantined, "clean churn path");
        }
    }
}
