//! Cross-crate invariants of the simulator and metrics, checked over
//! the whole workload suite under every selector.

use regionsel::core::select::SelectorKind;
use regionsel::core::{RunReport, SimConfig, Simulator};
use regionsel::program::Executor;
use regionsel::workloads::{Scale, Workload, suite};

fn run(w: &Workload, kind: SelectorKind, seed: u64) -> RunReport {
    let config = SimConfig::default();
    let (program, spec) = w.build(seed, Scale::Test);
    let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
    sim.run(Executor::new(&program, spec));
    sim.report()
}

#[test]
fn instruction_conservation() {
    for w in suite() {
        for kind in SelectorKind::all() {
            let r = run(&w, kind, 3);
            assert!(r.cache_insts <= r.total_insts, "{} {kind}", w.name());
            assert!(r.total_insts > 0, "{} {kind}", w.name());
            // Per-region executed instructions sum to the cache total.
            let per: u64 = r.regions.iter().map(|x| x.insts_executed).sum();
            assert_eq!(per, r.cache_insts, "{} {kind}", w.name());
        }
    }
}

#[test]
fn execution_counts_are_consistent() {
    for w in suite() {
        for kind in SelectorKind::all() {
            let r = run(&w, kind, 3);
            for (i, reg) in r.regions.iter().enumerate() {
                assert!(
                    reg.cycle_ends <= reg.executions,
                    "{} {kind} region {i}: cycles beyond executions",
                    w.name()
                );
                // A region that executed has at least one instruction
                // per execution.
                assert!(
                    reg.insts_executed >= reg.executions,
                    "{} {kind} region {i}",
                    w.name()
                );
                // (cycle_ends > 0 does not imply spans_cycle: indirect
                // terminators can dynamically return to the entry
                // without a static loop-back edge.)
            }
        }
    }
}

#[test]
fn cover_sets_are_monotone_in_the_fraction() {
    for w in suite().into_iter().take(6) {
        let r = run(&w, SelectorKind::Net, 3);
        let c50 = r.cover_set_size(0.5);
        let c90 = r.cover_set_size(0.9);
        if let (Some(a), Some(b)) = (c50, c90) {
            assert!(a <= b, "{}: cover(0.5)={a} > cover(0.9)={b}", w.name());
            assert!(b <= r.region_count());
        }
    }
}

#[test]
fn hit_rates_are_high_once_warm() {
    // Even at test scale, the hot loops dominate enough for the cache
    // to serve the bulk of execution — except gcc, whose phased guards
    // spread execution so thin that a 64x-shortened run barely crosses
    // the selection thresholds (full-scale gcc sits near 94-99%).
    for w in suite() {
        if w.name() == "gcc" {
            continue;
        }
        for kind in SelectorKind::all() {
            let r = run(&w, kind, 3);
            // Test scale shrinks runs 64x, so thresholds are barely
            // crossed; full-scale rates are 94-100% (see EXPERIMENTS.md).
            assert!(
                r.hit_rate() > 0.3,
                "{} {kind}: hit rate {:.3}",
                w.name(),
                r.hit_rate()
            );
        }
    }
}

#[test]
fn total_execution_is_selector_independent() {
    // The executor is oblivious to the optimization system: every
    // selector must observe the identical dynamic execution.
    for w in suite() {
        let totals: Vec<u64> = SelectorKind::all()
            .iter()
            .map(|&k| run(&w, k, 11).total_insts)
            .collect();
        assert!(
            totals.windows(2).all(|x| x[0] == x[1]),
            "{}: totals differ {totals:?}",
            w.name()
        );
    }
}

#[test]
fn exit_domination_pairs_respect_selection_order() {
    for w in suite().into_iter().take(6) {
        for kind in [SelectorKind::Net, SelectorKind::Lei] {
            let r = run(&w, kind, 3);
            for &(dominator, dominated) in &r.domination.pairs {
                assert!(dominator < dominated, "{} {kind}", w.name());
            }
            assert_eq!(r.domination.pairs.len(), r.domination.dominated_regions);
            assert!(r.domination.dominated_regions <= r.region_count());
        }
    }
}

#[test]
fn observed_memory_only_for_combining_selectors() {
    for w in suite().into_iter().take(4) {
        let plain = run(&w, SelectorKind::Net, 3);
        assert_eq!(plain.peak_observed_bytes, 0, "{}", w.name());
        let comb = run(&w, SelectorKind::CombinedNet, 3);
        // Combined selectors observed something on every workload.
        assert!(comb.peak_observed_bytes > 0, "{}", w.name());
    }
}

#[test]
fn reports_are_deterministic() {
    for w in suite().into_iter().take(4) {
        let a = run(&w, SelectorKind::CombinedLei, 17);
        let b = run(&w, SelectorKind::CombinedLei, 17);
        assert_eq!(a, b, "{}", w.name());
    }
}
