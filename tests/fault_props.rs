//! Property-based tests of the fault-injection layer: under arbitrary
//! seeded fault schedules, every selector must degrade gracefully —
//! no panics, no dangling cache links, balanced accounting, and fully
//! deterministic reports.

use proptest::prelude::*;
use regionsel::core::select::SelectorKind;
use regionsel::core::{FaultConfig, ResilienceStats, RunReport, SimConfig, Simulator};
use regionsel::program::patterns::ScenarioBuilder;
use regionsel::program::{BehaviorSpec, Executor, Program};

/// A small terminating scenario with enough structure to exercise
/// multi-region selection: a driver loop calling a low-address leaf,
/// with a biased diamond and an inner loop in the body.
fn build(trips: u32, inner: u32, bias: f64, seed: u64) -> (Program, BehaviorSpec) {
    let mut s = ScenarioBuilder::new(seed);
    let callee = s.function("leaf", 0x1000);
    let cb = s.block(callee, 2);
    s.ret(cb);
    let main = s.function("main", 0x40_0000);
    s.set_entry(main);
    let head = s.block(main, 1);
    let _ = s.diamond(main, bias, 1);
    let ih = s.block(main, 1);
    let il = s.block(main, 1);
    s.branch_trips(il, ih, inner);
    let call = s.block(main, 1);
    s.call(call, callee);
    let latch = s.block(main, 1);
    s.branch_trips(latch, head, trips);
    let out = s.block(main, 0);
    s.ret(out);
    s.build().expect("generated scenario is well-formed")
}

fn low_thresholds(faults: FaultConfig) -> SimConfig {
    SimConfig {
        net_threshold: 8,
        lei_threshold: 6,
        t_prof: 4,
        t_min: 2,
        boa_threshold: 5,
        wr_sample_period: 13,
        wr_sample_threshold: 3,
        adore_sample_period: 7,
        adore_path_threshold: 2,
        mojo_exit_threshold: 4,
        faults,
        ..SimConfig::default()
    }
}

/// Runs to completion and returns both the report and the finished
/// simulator (for cache-structure assertions).
fn run<'p>(
    p: &'p Program,
    spec: BehaviorSpec,
    kind: SelectorKind,
    cfg: &SimConfig,
) -> (RunReport, Simulator<'p>) {
    let mut sim = Simulator::new(p, kind.make(p, cfg), cfg);
    sim.run(Executor::new(p, spec).take(120_000));
    (sim.report(), sim)
}

fn fault_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        0u64..u64::MAX,
        0u32..=20_000,
        0u32..=5_000,
        0u32..=5_000,
        1u32..=6,
    )
        .prop_map(|(seed, smc, wave, ctr, after)| FaultConfig {
            seed,
            smc_write_ppm: smc,
            flush_wave_ppm: wave,
            counter_fault_ppm: ctr,
            blacklist_after: after,
            ..FaultConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every selector survives an arbitrary fault schedule with its
    /// invariants intact.
    #[test]
    fn selectors_degrade_gracefully_under_faults(
        faults in fault_strategy(),
        trips in 40u32..300,
        inner in 1u32..10,
        seed in 0u64..500,
    ) {
        let cfg = low_thresholds(faults);
        let (p, spec) = build(trips, inner, 0.9, seed);
        for kind in SelectorKind::extended() {
            let (r, sim) = run(&p, spec.clone(), kind, &cfg);
            // Conservation: cache execution never exceeds the total,
            // and every cached instruction is attributed to exactly
            // one region report (retired regions included).
            prop_assert!(r.cache_insts <= r.total_insts, "{kind}");
            let per: u64 = r.regions.iter().map(|x| x.insts_executed).sum();
            prop_assert_eq!(per, r.cache_insts, "{}", kind);
            // Rates stay in range even when faults truncate windows.
            let hit = r.hit_rate();
            prop_assert!((0.0..=1.0).contains(&hit), "{kind}: {hit}");
            if let Some(under) = r.hit_rate_under_faults() {
                prop_assert!((0.0..=1.0).contains(&under), "{kind}: {under}");
                prop_assert!(r.resilience.fault_events() > 0, "{kind}");
            }
            // No dangling links: invalidation severs both directions.
            for (from, to) in sim.cache().links() {
                prop_assert!(sim.cache().try_region(from).is_ok(), "{kind}: {from:?}");
                prop_assert!(sim.cache().try_region(to).is_ok(), "{kind}: {to:?}");
            }
            // Fault bookkeeping is internally consistent.
            let res = &r.resilience;
            // Every reformation follows a distinct removal (the cache
            // rejects duplicate entries, so an entry cannot reform
            // twice without being removed in between).
            prop_assert!(
                res.reformations <= res.invalidated_regions + res.pressure_evicted_regions,
                "{kind}: {res:?}"
            );
            prop_assert!(res.blacklisted_targets <= res.invalidated_regions, "{kind}");
            if res.smc_events == 0 {
                prop_assert_eq!(res.invalidated_regions, 0, "{}", kind);
                prop_assert_eq!(res.blacklisted_targets, 0, "{}", kind);
            }
            if res.flush_waves == 0 {
                prop_assert_eq!(res.pressure_evicted_regions, 0, "{}", kind);
            }
        }
    }

    /// The same fault seed replays the same schedule: two runs produce
    /// bit-identical reports.
    #[test]
    fn seeded_fault_schedules_are_deterministic(
        faults in fault_strategy(),
        trips in 40u32..200,
        kind_ix in 0usize..SelectorKind::extended().len(),
    ) {
        let kind = SelectorKind::extended()[kind_ix];
        let cfg = low_thresholds(faults);
        let (p, spec) = build(trips, 3, 0.8, 1);
        let (a, _) = run(&p, spec.clone(), kind, &cfg);
        let (b, _) = run(&p, spec, kind, &cfg);
        prop_assert_eq!(a, b);
    }

    /// With every rate at zero the fault layer is invisible: reports
    /// are bit-identical to a default-config run no matter the seed.
    #[test]
    fn zero_rates_are_bit_identical_to_no_fault_layer(
        seed in 0u64..u64::MAX,
        trips in 40u32..200,
        kind_ix in 0usize..SelectorKind::extended().len(),
    ) {
        let kind = SelectorKind::extended()[kind_ix];
        let base = low_thresholds(FaultConfig::default());
        let seeded = low_thresholds(FaultConfig { seed, ..FaultConfig::default() });
        let (p, spec) = build(trips, 3, 0.8, 1);
        let (a, _) = run(&p, spec.clone(), kind, &base);
        let (b, _) = run(&p, spec, kind, &seeded);
        prop_assert_eq!(&a.resilience, &ResilienceStats::default());
        prop_assert_eq!(a.hit_rate_under_faults(), None);
        prop_assert_eq!(a, b);
    }
}
