//! Aggregate qualitative orderings from the paper's evaluation,
//! checked at test scale across the whole suite.
//!
//! These assert the *shape* of the results — who wins and in which
//! direction — with generous margins; the figure binaries in
//! `rsel-bench` regenerate the quantitative tables at full scale.

use regionsel::core::select::SelectorKind;
use regionsel::core::{RunReport, SimConfig, Simulator};
use regionsel::program::Executor;
use regionsel::workloads::{Scale, suite};
use std::collections::HashMap;

fn matrix() -> HashMap<(&'static str, &'static str), RunReport> {
    let config = SimConfig::default();
    let mut out = HashMap::new();
    for w in suite() {
        for kind in SelectorKind::all() {
            let (program, spec) = w.build(2005, Scale::Test);
            let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
            sim.run(Executor::new(&program, spec));
            out.insert((w.name(), kind.name()), sim.report());
        }
    }
    out
}

fn geomean(v: &[f64]) -> f64 {
    (v.iter().map(|x| x.max(1e-9).ln()).sum::<f64>() / v.len() as f64).exp()
}

#[test]
fn paper_shape_holds_in_aggregate() {
    let m = matrix();
    let workloads: Vec<&str> = suite().iter().map(|w| w.name()).collect();
    let ratio = |num: &dyn Fn(&RunReport) -> f64, a: &'static str, b: &'static str| {
        let rs: Vec<f64> = workloads
            .iter()
            .map(|&w| num(&m[&(w, a)]) / num(&m[&(w, b)]).max(1e-9))
            .collect();
        geomean(&rs)
    };

    // Figure 7: LEI selects at least as many cycle-spanning traces.
    let spanned = |sel: &'static str| -> usize {
        workloads
            .iter()
            .map(|&w| {
                m[&(w, sel)]
                    .regions
                    .iter()
                    .filter(|r| r.spans_cycle)
                    .count()
            })
            .sum()
    };
    assert!(
        spanned("LEI") > spanned("NET"),
        "LEI spans more cycles: {} vs {}",
        spanned("LEI"),
        spanned("NET")
    );

    // Figure 8: LEI reduces region transitions.
    let transitions = |r: &RunReport| r.region_transitions as f64;
    let t_ratio = ratio(&transitions, "LEI", "NET");
    assert!(t_ratio < 0.95, "LEI/NET transitions {t_ratio:.3}");

    // Figure 9: LEI needs no larger 90% cover sets on average.
    let covers: Vec<f64> = workloads
        .iter()
        .filter_map(|&w| {
            let lei = m[&(w, "LEI")].cover_set_size(0.9)?;
            let net = m[&(w, "NET")].cover_set_size(0.9)?;
            Some(lei as f64 / net as f64)
        })
        .collect();
    assert!(!covers.is_empty());
    let c_ratio = geomean(&covers);
    assert!(c_ratio < 1.0, "LEI/NET cover sets {c_ratio:.3}");

    // Figure 16: combination reduces transitions for both bases, and
    // helps LEI at least as much as NET.
    let cn = ratio(&transitions, "combined NET", "NET");
    let cl = ratio(&transitions, "combined LEI", "LEI");
    assert!(cn < 1.0, "cNET/NET transitions {cn:.3}");
    assert!(cl < 1.0, "cLEI/LEI transitions {cl:.3}");
    assert!(
        cl <= cn + 0.05,
        "combination helps LEI more: {cl:.3} vs {cn:.3}"
    );

    // Figure 19: combination reduces exit stubs for both bases.
    let stubs = |r: &RunReport| r.stub_count() as f64;
    assert!(ratio(&stubs, "combined NET", "NET") < 1.0);
    assert!(ratio(&stubs, "combined LEI", "LEI") < 1.0);

    // §6 headline: combined LEI cuts transitions against plain NET by a
    // large factor ("cutting the number of region transitions in half").
    let headline = ratio(&transitions, "combined LEI", "NET");
    assert!(headline < 0.6, "combined LEI/NET transitions {headline:.3}");
}

#[test]
fn mcf_is_the_interprocedural_cycle_showcase() {
    // The paper's Figure 2 story is most visible on mcf-like code:
    // LEI's executed-cycle ratio dwarfs NET's and its transitions
    // collapse.
    let config = SimConfig::default();
    let w = suite().into_iter().find(|w| w.name() == "mcf").unwrap();
    let mut reports = HashMap::new();
    for kind in [SelectorKind::Net, SelectorKind::Lei] {
        let (program, spec) = w.build(2005, Scale::Test);
        let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
        sim.run(Executor::new(&program, spec));
        reports.insert(kind.name(), sim.report());
    }
    let net = &reports["NET"];
    let lei = &reports["LEI"];
    assert!(
        lei.executed_cycle_ratio() > net.executed_cycle_ratio() + 0.3,
        "LEI {:.2} vs NET {:.2}",
        lei.executed_cycle_ratio(),
        net.executed_cycle_ratio()
    );
    assert!(lei.region_transitions * 5 < net.region_transitions);
}

#[test]
fn combination_never_wrecks_hit_rate() {
    // §4.3: combination moves hit rates by well under a point in the
    // paper; allow a few points at our miniature test scale.
    let m = matrix();
    for w in suite() {
        let base = m[&(w.name(), "NET")].hit_rate();
        let comb = m[&(w.name(), "combined NET")].hit_rate();
        assert!(
            comb + 0.1 >= base,
            "{}: combined NET hit {:.3} vs NET {:.3}",
            w.name(),
            comb,
            base
        );
    }
}
