//! The paper's three motivating scenarios (Figures 2–4) as assertions.

use regionsel::core::select::SelectorKind;
use regionsel::core::{SimConfig, Simulator};
use regionsel::program::patterns::ScenarioBuilder;
use regionsel::program::{BehaviorSpec, Executor, Program};

fn run(
    program: &Program,
    spec: BehaviorSpec,
    kind: SelectorKind,
) -> (
    regionsel::core::RunReport,
    usize,
    Vec<Vec<regionsel::program::Addr>>,
) {
    let config = SimConfig::default();
    let mut sim = Simulator::new(program, kind.make(program, &config), &config);
    sim.run(Executor::new(program, spec));
    let paths = sim
        .cache()
        .regions()
        .iter()
        .map(|r| r.blocks().iter().map(|b| b.start()).collect())
        .collect();
    (sim.report(), sim.cache().len(), paths)
}

/// Figure 2: a loop with a function call on its dominant path.
mod figure2 {
    use super::*;

    fn scenario() -> (Program, BehaviorSpec, [regionsel::program::Addr; 4]) {
        let mut s = ScenarioBuilder::new(2);
        let caller = s.function("loop_fn", 0x40_0000);
        let callee = s.function("callee", 0x1000);
        let a = s.block(caller, 2);
        s.call(a, callee);
        let latch = s.block(caller, 1);
        s.branch_trips(latch, a, 20_000);
        let out = s.block(caller, 0);
        s.ret(out);
        let e = s.block(callee, 2);
        s.ret(e);
        let (p, spec) = s.build().unwrap();
        let addrs = [
            p.block(a).start(),
            p.block(latch).start(),
            p.block(e).start(),
            p.block(out).start(),
        ];
        (p, spec, addrs)
    }

    #[test]
    fn net_splits_the_cycle_into_separate_traces() {
        let (p, spec, _) = scenario();
        let (rep, regions, paths) = run(&p, spec, SelectorKind::Net);
        assert!(regions >= 2, "NET needs at least two traces");
        assert!(
            paths.iter().all(|path| path.len() < 4),
            "no NET trace contains the whole cycle"
        );
        assert_eq!(rep.regions.iter().filter(|r| r.spans_cycle).count(), 0);
        assert!(
            rep.region_transitions > 10_000,
            "iterating bounces between traces"
        );
    }

    #[test]
    fn lei_selects_one_cycle_spanning_trace() {
        let (p, spec, [a, latch, e, _]) = scenario();
        let (rep, _, paths) = run(&p, spec, SelectorKind::Lei);
        let spanning = rep.regions.iter().filter(|r| r.spans_cycle).count();
        assert!(spanning >= 1, "LEI spans the interprocedural cycle");
        assert!(
            paths
                .iter()
                .any(|p| p.contains(&a) && p.contains(&latch) && p.contains(&e)),
            "one trace holds the whole cycle"
        );
        assert_eq!(
            rep.region_transitions, 0,
            "iteration never leaves the trace"
        );
        assert!(rep.executed_cycle_ratio() > 0.99);
    }

    #[test]
    fn lei_needs_fewer_exit_stubs_than_net() {
        let (p, spec, _) = scenario();
        let (net, ..) = run(&p, spec, SelectorKind::Net);
        let (p, spec, _) = scenario();
        let (lei, ..) = run(&p, spec, SelectorKind::Lei);
        // Figure 2: "it would require two fewer exit stubs".
        assert!(
            lei.stub_count() + 2 <= net.stub_count(),
            "LEI {} vs NET {}",
            lei.stub_count(),
            net.stub_count()
        );
    }
}

/// Figure 3: nested loops.
mod figure3 {
    use super::*;

    fn scenario() -> (Program, BehaviorSpec, regionsel::program::Addr) {
        let mut s = ScenarioBuilder::new(5);
        let f = s.function("nest", 0x1000);
        let a = s.block(f, 2);
        let b = s.block(f, 2);
        s.branch_trips(b, b, 12);
        let c = s.block(f, 2);
        s.branch_trips(c, a, 30_000);
        let out = s.block(f, 0);
        s.ret(out);
        let _ = a;
        let (p, spec) = s.build().unwrap();
        let b_addr = p.block(b).start();
        (p, spec, b_addr)
    }

    fn copies_of(paths: &[Vec<regionsel::program::Addr>], addr: regionsel::program::Addr) -> usize {
        paths
            .iter()
            .flat_map(|p| p.iter())
            .filter(|&&x| x == addr)
            .count()
    }

    #[test]
    fn net_duplicates_the_inner_loop() {
        let (p, spec, b) = scenario();
        let (_, _, paths) = run(&p, spec, SelectorKind::Net);
        assert!(copies_of(&paths, b) >= 2, "NET copies the inner loop twice");
    }

    #[test]
    fn lei_copies_the_inner_loop_once() {
        let (p, spec, b) = scenario();
        let (_, _, paths) = run(&p, spec, SelectorKind::Lei);
        assert_eq!(
            copies_of(&paths, b),
            1,
            "LEI avoids duplicating the nested cycle"
        );
    }

    #[test]
    fn lei_expands_less_code_than_net() {
        let (p, spec, _) = scenario();
        let (net, ..) = run(&p, spec, SelectorKind::Net);
        let (p, spec, _) = scenario();
        let (lei, ..) = run(&p, spec, SelectorKind::Lei);
        assert!(lei.insts_copied() < net.insts_copied());
    }
}

/// Figure 4: an unbiased branch whose sides rejoin.
mod figure4 {
    use super::*;
    use regionsel::program::Addr;

    #[allow(clippy::type_complexity)]
    fn scenario() -> (Program, BehaviorSpec, (Addr, Addr, Addr, Addr)) {
        let mut s = ScenarioBuilder::new(9);
        let f = s.function("diamond", 0x1000);
        let head = s.block(f, 1);
        let a = s.block(f, 1);
        let b = s.block(f, 2);
        let c = s.block(f, 2);
        let d = s.block(f, 1);
        let tail = s.block(f, 1);
        let e = s.block(f, 2);
        let latch = s.block(f, 1);
        let out = s.block(f, 0);
        let _ = head;
        s.branch_p(a, c, 0.5);
        s.jump(b, d);
        s.branch_p(d, e, 0.1);
        s.jump(tail, latch);
        let _ = e;
        s.branch_trips(latch, head, 40_000);
        s.ret(out);
        let (p, spec) = s.build().unwrap();
        let at = |id| p.block(id).start();
        (p.clone(), spec, (at(b), at(c), at(d), at(tail)))
    }

    #[test]
    fn net_duplicates_the_rejoining_tail() {
        let (p, spec, (_, _, d, tail)) = scenario();
        let (_, _, paths) = run(&p, spec, SelectorKind::Net);
        let copies_d = paths
            .iter()
            .flat_map(|x| x.iter())
            .filter(|&&x| x == d)
            .count();
        let copies_t = paths
            .iter()
            .flat_map(|x| x.iter())
            .filter(|&&x| x == tail)
            .count();
        assert!(
            copies_d >= 2 && copies_t >= 2,
            "tail duplicated: D x{copies_d}, F x{copies_t}"
        );
    }

    #[test]
    fn combined_net_holds_both_sides_without_duplication() {
        let (p, spec, (b, c, d, tail)) = scenario();
        let (rep, _, paths) = run(&p, spec, SelectorKind::CombinedNet);
        // One region contains both sides and one copy of the tail.
        let big = paths
            .iter()
            .find(|x| x.contains(&b) && x.contains(&c))
            .expect("a combined region holds both sides");
        assert!(big.contains(&d) && big.contains(&tail));
        let copies_d: usize = paths
            .iter()
            .flat_map(|x| x.iter())
            .filter(|&&x| x == d)
            .count();
        assert_eq!(copies_d, 1, "no duplication of the join");
        assert!(rep.region_transitions < 100, "control stays in the region");
    }

    #[test]
    fn combination_cuts_stubs_and_transitions() {
        let (p, spec, _) = scenario();
        let (net, ..) = run(&p, spec, SelectorKind::Net);
        let (p, spec, _) = scenario();
        let (comb, ..) = run(&p, spec, SelectorKind::CombinedNet);
        assert!(comb.stub_count() < net.stub_count());
        assert!(comb.region_transitions < net.region_transitions / 2);
    }
}
