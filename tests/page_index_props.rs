//! Property test for the page-granular invalidation index: over
//! arbitrary insert / invalidate / evict / flush sequences, the
//! indexed overlap query must return exactly the region set the
//! retained linear scan finds, and `invalidate_range` must therefore
//! remove exactly that set. (Debug builds also cross-check the oracle
//! inside `invalidate_range` itself; this test asserts it explicitly
//! so release builds are covered too.)

use proptest::prelude::*;
use regionsel::core::cache::code_cache::INDEX_PAGE_BYTES;
use regionsel::core::{CodeCache, Region};
use regionsel::program::{Addr, FxHashSet, Program, ProgramBuilder};

/// `n` single-block leaf functions spaced 0x180 bytes apart — three
/// quarters of an index page, so regions straddle page boundaries at
/// irregular offsets.
fn program_with(n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for i in 0..n {
        let f = b.function(&format!("f{i}"), 0x1000 + (i as u64) * 0x180);
        let blk = b.block_with(f, 3);
        b.ret(blk);
    }
    b.build().expect("disjoint leaf functions are well-formed")
}

const FUNCS: usize = 48;
const BASE: u64 = 0x1000;
const END: u64 = BASE + (FUNCS as u64) * 0x180 + 0x200;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Insert the region for block `i` (skipped if its entry is live).
    Insert(usize),
    /// Invalidate `[lo, lo + span)`.
    Invalidate(u64, u64),
    /// Evict the `count` oldest regions.
    Evict(usize),
    /// Drop everything.
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` is unweighted; inserts and
    // invalidations are listed repeatedly to bias toward them.
    prop_oneof![
        (0usize..FUNCS).prop_map(Op::Insert),
        (0usize..FUNCS).prop_map(Op::Insert),
        (0usize..FUNCS).prop_map(Op::Insert),
        (0usize..FUNCS).prop_map(Op::Insert),
        (BASE..END, 1u64..1024).prop_map(|(lo, span)| Op::Invalidate(lo, span)),
        (BASE..END, 1u64..1024).prop_map(|(lo, span)| Op::Invalidate(lo, span)),
        (BASE..END, 1u64..1024).prop_map(|(lo, span)| Op::Invalidate(lo, span)),
        (1usize..4).prop_map(Op::Evict),
        Just(Op::Flush),
    ]
}

/// The indexed query agrees with the scan at `[lo, hi)`, and on a few
/// fixed probes that exercise the whole-cache walk path.
fn assert_oracle(cache: &CodeCache, lo: Addr, hi: Addr) {
    assert_eq!(
        cache.regions_overlapping(lo, hi),
        cache.regions_overlapping_scan(lo, hi),
        "page index diverged from the scan oracle on [{lo}, {hi})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_invalidation_matches_the_scan_oracle(
        ops in prop::collection::vec(op_strategy(), 1..80)
    ) {
        let p = program_with(FUNCS);
        let mut cache = CodeCache::new();
        let mut live_entries: FxHashSet<Addr> = FxHashSet::default();
        let resync = |cache: &CodeCache, live: &mut FxHashSet<Addr>| {
            live.clear();
            live.extend(cache.regions().iter().map(|r| r.entry()));
        };
        for op in ops {
            match op {
                Op::Insert(i) => {
                    let entry = p.blocks()[i].start();
                    if live_entries.insert(entry) {
                        cache.insert(Region::trace(&p, &[entry]));
                    }
                }
                Op::Invalidate(lo, span) => {
                    let (lo, hi) = (Addr::new(lo), Addr::new(lo.saturating_add(span)));
                    assert_oracle(&cache, lo, hi);
                    let expected = cache.regions_overlapping_scan(lo, hi);
                    let removal = cache.invalidate_range(lo, hi);
                    prop_assert_eq!(
                        removal.removed.len(), expected.len(),
                        "invalidate_range must remove exactly the overlap set"
                    );
                    resync(&cache, &mut live_entries);
                }
                Op::Evict(count) => {
                    cache.evict_oldest(count);
                    resync(&cache, &mut live_entries);
                }
                Op::Flush => {
                    cache.flush();
                    live_entries.clear();
                }
            }
            // Probes after every op: an empty range, a single index
            // page, and the whole address space (the index-walk path).
            assert_oracle(&cache, Addr::new(BASE), Addr::new(BASE));
            assert_oracle(&cache, Addr::new(BASE), Addr::new(BASE + INDEX_PAGE_BYTES));
            assert_oracle(&cache, Addr::new(0), Addr::new(u64::MAX));
        }
    }
}
