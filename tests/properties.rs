//! Property-based tests over the core data structures and algorithms.

use proptest::prelude::*;
use regionsel::core::metrics::cover_set_size;
use regionsel::core::select::history::HistoryBuffer;
use regionsel::core::select::rejoin::mark_rejoining_paths;
use regionsel::program::{Addr, ProgramBuilder};
use regionsel::trace::{AddrWidth, BitString, TraceRecorder};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------
// BitString
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn bitstring_round_trips(pushes in prop::collection::vec((any::<u64>(), 1u32..=64), 0..50)) {
        let mut b = BitString::new();
        for (v, n) in &pushes {
            b.push_bits(*v, *n);
        }
        let total: usize = pushes.iter().map(|(_, n)| *n as usize).sum();
        prop_assert_eq!(b.bit_len(), total);
        prop_assert_eq!(b.byte_len(), total.div_ceil(8));
        let mut r = b.reader();
        for (v, n) in &pushes {
            let mask = if *n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            prop_assert_eq!(r.read_bits(*n), Some(v & mask));
        }
        prop_assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn bitstring_random_access_matches_sequential(
        pushes in prop::collection::vec(any::<bool>(), 1..200),
        probe in 0usize..200,
    ) {
        let mut b = BitString::new();
        for &bit in &pushes {
            b.push_bit(bit);
        }
        if probe < pushes.len() {
            prop_assert_eq!(b.bits_at(probe, 1), Some(u64::from(pushes[probe])));
        } else {
            prop_assert_eq!(b.bits_at(probe, 1), None);
        }
    }
}

// ---------------------------------------------------------------------
// Compact trace codec over randomly generated ladder programs
// ---------------------------------------------------------------------

/// A "ladder" program: N blocks laid out sequentially, each ending in a
/// conditional branch to a strictly later block; the final block
/// returns. All walks are finite and forward.
fn ladder(n_blocks: usize, straights: &[u8], hops: &[u8]) -> regionsel::program::Program {
    let mut b = ProgramBuilder::new();
    let f = b.function("ladder", 0x1000);
    let ids: Vec<_> = (0..n_blocks)
        .map(|i| b.block_with(f, u32::from(straights[i % straights.len()] % 4)))
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        if i + 1 == n_blocks {
            b.ret(id);
        } else {
            let hop = 1 + usize::from(hops[i % hops.len()]) % (n_blocks - i - 1).max(1);
            b.cond_branch(id, ids[(i + hop).min(n_blocks - 1)]);
        }
    }
    b.build().expect("ladder is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn compact_codec_round_trips_on_random_walks(
        n_blocks in 2usize..24,
        straights in prop::collection::vec(any::<u8>(), 1..8),
        hops in prop::collection::vec(any::<u8>(), 1..8),
        outcomes in prop::collection::vec(any::<bool>(), 0..32),
        width in prop::sample::select(vec![AddrWidth::W32, AddrWidth::W64]),
    ) {
        let p = ladder(n_blocks, &straights, &hops);
        // Walk the ladder with the given cond outcomes, recording.
        let start = p.entry();
        let mut rec = TraceRecorder::new(start, width);
        let mut walked = vec![];
        let mut addr = start;
        let mut k = 0;
        let mut last;
        loop {
            let inst = p.inst_at(addr).expect("on path");
            walked.push(addr);
            last = addr;
            use regionsel::program::InstKind;
            addr = match inst.kind() {
                InstKind::Straight => inst.fallthrough_addr(),
                InstKind::CondBranch { target } => {
                    if k >= outcomes.len() {
                        break; // end the trace at this branch
                    }
                    let taken = outcomes[k];
                    k += 1;
                    rec.record_cond(taken);
                    if taken { target } else { inst.fallthrough_addr() }
                }
                InstKind::Ret => break,
                _ => unreachable!("ladders only have cond branches and rets"),
            };
        }
        let ct = rec.finish(last);
        let decoded = ct.decode(&p).expect("decodes against its own program");
        prop_assert_eq!(decoded.insts, walked);
    }
}

// ---------------------------------------------------------------------
// MARK-REJOINING-PATHS vs. brute-force reachability
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn rejoin_marking_equals_reachability(
        n in 2usize..16,
        edge_bits in prop::collection::vec(any::<bool>(), 16 * 16),
        marked_bits in prop::collection::vec(any::<bool>(), 16),
    ) {
        let nodes: Vec<Addr> = (0..n as u64).map(|i| Addr::new(0x100 + i)).collect();
        let mut edges: HashMap<Addr, Vec<Addr>> = HashMap::new();
        for i in 0..n {
            for j in 0..n {
                if edge_bits[i * 16 + j] {
                    edges.entry(nodes[i]).or_default().push(nodes[j]);
                }
            }
        }
        let mut init: HashSet<Addr> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| marked_bits[*i])
            .map(|(_, a)| *a)
            .collect();
        init.insert(nodes[0]); // the entry is always marked
        let got = mark_rejoining_paths(nodes[0], &nodes, &edges, &init);

        // Brute force: a node is marked iff an initially-marked node is
        // reachable from it.
        let mut expect: HashSet<Addr> = init.clone();
        loop {
            let mut changed = false;
            for &u in &nodes {
                if expect.contains(&u) {
                    continue;
                }
                let hits = edges
                    .get(&u)
                    .is_some_and(|vs| vs.iter().any(|v| expect.contains(v)));
                if hits {
                    expect.insert(u);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        prop_assert_eq!(got.marked, expect);
        prop_assert!(got.iterations >= 1);
    }
}

// ---------------------------------------------------------------------
// Cover sets
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn cover_set_is_minimal_and_monotone(
        per in prop::collection::vec(1u64..10_000, 1..40),
        frac_pct in 1u32..=100,
    ) {
        let total: u64 = per.iter().sum();
        let frac = f64::from(frac_pct) / 100.0;
        let k = cover_set_size(&per, total, frac).expect("attainable within total");
        // Using the k largest regions reaches the goal...
        let mut sorted = per.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_k: u64 = sorted.iter().take(k).sum();
        prop_assert!(top_k as f64 >= total as f64 * frac);
        // ...and k-1 do not (minimality).
        if k > 0 {
            let top_km1: u64 = sorted.iter().take(k - 1).sum();
            prop_assert!((top_km1 as f64) < total as f64 * frac);
        }
        // Monotonicity in the fraction.
        if frac_pct > 1 {
            let smaller = cover_set_size(&per, total, f64::from(frac_pct - 1) / 100.0)
                .expect("attainable");
            prop_assert!(smaller <= k);
        }
    }
}

// ---------------------------------------------------------------------
// History buffer vs. a naive model
// ---------------------------------------------------------------------

#[derive(Default)]
struct NaiveBuffer {
    cap: usize,
    entries: Vec<(u64, Addr, Addr)>, // (seq, src, tgt)
    hash: HashMap<Addr, u64>,
    next: u64,
}

impl NaiveBuffer {
    fn insert(&mut self, src: Addr, tgt: Addr) -> (u64, Option<Addr>) {
        let mut dropped = None;
        if self.entries.len() == self.cap {
            let (seq, _, t) = self.entries.remove(0);
            if self.hash.get(&t) == Some(&seq) {
                self.hash.remove(&t);
                dropped = Some(t);
            }
        }
        let seq = self.next;
        self.next += 1;
        self.entries.push((seq, src, tgt));
        (seq, dropped)
    }

    fn truncate_after(&mut self, seq: u64) {
        self.entries.retain(|(s, _, _)| *s <= seq);
        self.hash.clear();
        for (s, _, t) in &self.entries {
            self.hash.insert(*t, *s);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn history_buffer_matches_naive_model(
        cap in 1usize..12,
        ops in prop::collection::vec((0u8..3, 0u64..8, 0u64..8), 1..80),
    ) {
        let mut real = HistoryBuffer::new(cap);
        let mut naive = NaiveBuffer { cap, ..NaiveBuffer::default() };
        let mut live_seqs: Vec<u64> = vec![];
        for (op, x, y) in ops {
            let (src, tgt) = (Addr::new(0x10 + x), Addr::new(0x10 + y));
            match op {
                0 => {
                    let (s1, d1) = real.insert(src, tgt, false);
                    let (s2, d2) = naive.insert(src, tgt);
                    prop_assert_eq!(s1, s2);
                    prop_assert_eq!(d1, d2);
                    live_seqs.push(s1);
                    real.update_hash(tgt, s1);
                    naive.hash.insert(tgt, s2);
                }
                1 => {
                    prop_assert_eq!(real.lookup(tgt), naive.hash.get(&tgt).copied());
                }
                _ => {
                    if let Some(&seq) = live_seqs.get((x as usize) % live_seqs.len().max(1)) {
                        real.truncate_after(seq);
                        naive.truncate_after(seq);
                    }
                }
            }
            prop_assert_eq!(real.len(), naive.entries.len());
            let real_tgts: Vec<Addr> =
                real.branches_after(0).map(|e| e.tgt).collect();
            // Skip the first entry when seq 0 is still buffered (the
            // iterator is strictly-after).
            let naive_tgts: Vec<Addr> = naive
                .entries
                .iter()
                .filter(|(s, _, _)| *s > 0)
                .map(|(_, _, t)| *t)
                .collect();
            prop_assert_eq!(real_tgts, naive_tgts);
        }
    }
}
