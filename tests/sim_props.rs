//! Property-based tests of the full simulator over randomly generated
//! structured programs, under every implemented selector.

use proptest::prelude::*;
use regionsel::core::select::SelectorKind;
use regionsel::core::{RunReport, SimConfig, Simulator};
use regionsel::program::patterns::ScenarioBuilder;
use regionsel::program::{BehaviorSpec, Executor, Program};

/// One element of a randomly composed driver-loop body.
#[derive(Clone, Debug)]
enum BodyOp {
    /// A biased/unbiased diamond with the given taken-probability (%).
    Diamond(u8),
    /// An inner counted loop with the given trip count.
    InnerLoop(u8),
    /// A call to a leaf function placed below the driver.
    CallLow(u8),
    /// A call to a worker (with its own loop) placed above the driver.
    CallHigh(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (1u8..=99).prop_map(BodyOp::Diamond),
        (1u8..=20).prop_map(BodyOp::InnerLoop),
        (1u8..=4).prop_map(BodyOp::CallLow),
        ((1u8..=3), (1u8..=12)).prop_map(|(w, t)| BodyOp::CallHigh(w, t)),
    ]
}

/// Builds a terminating program: a driver loop whose body is the given
/// op sequence.
fn build(ops: &[BodyOp], trips: u32, seed: u64) -> (Program, BehaviorSpec) {
    let mut s = ScenarioBuilder::new(seed);
    // Pre-create callees (addresses bracketing the driver).
    let mut low = Vec::new();
    let mut high = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            BodyOp::CallLow(work) => {
                let f = s.function(&format!("leaf_{i}"), 0x1000 + 0x1000 * i as u64);
                let b = s.block(f, u32::from(*work));
                s.ret(b);
                low.push((i, f));
            }
            BodyOp::CallHigh(work, inner) => {
                let f = s.function(&format!("worker_{i}"), 0x100_0000 + 0x1000 * i as u64);
                let head = s.block(f, u32::from(*work));
                let latch = s.block(f, 1);
                s.branch_trips(latch, head, u32::from(*inner));
                let out = s.block(f, 0);
                s.ret(out);
                high.push((i, f));
            }
            _ => {}
        }
    }
    let main = s.function("main", 0x40_0000);
    s.set_entry(main);
    let head = s.block(main, 1);
    for (i, op) in ops.iter().enumerate() {
        match op {
            BodyOp::Diamond(pct) => {
                let _ = s.diamond(main, f64::from(*pct) / 100.0, 1);
            }
            BodyOp::InnerLoop(trips) => {
                let ih = s.block(main, 1);
                let il = s.block(main, 1);
                s.branch_trips(il, ih, u32::from(*trips));
            }
            BodyOp::CallLow(_) => {
                let callee = low.iter().find(|(j, _)| *j == i).expect("created").1;
                let b = s.block(main, 1);
                s.call(b, callee);
            }
            BodyOp::CallHigh(..) => {
                let callee = high.iter().find(|(j, _)| *j == i).expect("created").1;
                let b = s.block(main, 1);
                s.call(b, callee);
            }
        }
    }
    let latch = s.block(main, 1);
    s.branch_trips(latch, head, trips);
    let out = s.block(main, 0);
    s.ret(out);
    s.build().expect("generated scenario is well-formed")
}

fn run(p: &Program, spec: BehaviorSpec, kind: SelectorKind, cfg: &SimConfig) -> RunReport {
    let mut sim = Simulator::new(p, kind.make(p, cfg), cfg);
    sim.run(Executor::new(p, spec).take(150_000));
    sim.report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn simulator_invariants_on_random_programs(
        ops in prop::collection::vec(op_strategy(), 1..7),
        trips in 30u32..400,
        seed in 0u64..1_000,
    ) {
        // Low thresholds so selection happens even on short runs.
        let cfg = SimConfig {
            net_threshold: 8,
            lei_threshold: 6,
            t_prof: 4,
            t_min: 2,
            boa_threshold: 5,
            wr_sample_period: 13,
            wr_sample_threshold: 3,
            adore_sample_period: 7,
            adore_path_threshold: 2,
            mojo_exit_threshold: 4,
            ..SimConfig::default()
        };
        let (p, spec) = build(&ops, trips, seed);
        let mut totals = Vec::new();
        for kind in SelectorKind::extended() {
            let r = run(&p, spec.clone(), kind, &cfg);
            totals.push(r.total_insts);
            // Conservation.
            prop_assert!(r.cache_insts <= r.total_insts, "{kind}");
            let per: u64 = r.regions.iter().map(|x| x.insts_executed).sum();
            prop_assert_eq!(per, r.cache_insts, "{}", kind);
            // Per-region consistency.
            for reg in &r.regions {
                prop_assert!(reg.cycle_ends <= reg.executions);
                prop_assert!(reg.insts_copied > 0);
                // NOTE: cycle_ends > 0 does NOT imply spans_cycle: an
                // indirect terminator (e.g. a ret) can dynamically
                // return to the region entry without any static
                // loop-back edge — the paper's spanned/executed cycle
                // metrics are correlated, not nested.
            }
            // Layout metrics.
            prop_assert!(r.transition_page_crossings <= r.region_transitions, "{}", kind);
        }
        // Every selector saw the identical execution.
        prop_assert!(totals.windows(2).all(|w| w[0] == w[1]), "{totals:?}");
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity_on_random_programs(
        ops in prop::collection::vec(op_strategy(), 1..5),
        trips in 50u32..300,
        capacity in 100u64..2_000,
    ) {
        let cfg = SimConfig {
            net_threshold: 8,
            cache_capacity: Some(capacity),
            ..SimConfig::default()
        };
        let (p, spec) = build(&ops, trips, 1);
        let mut sim = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        sim.run(Executor::new(&p, spec).take(120_000));
        // The live cache respects the bound at the end of the run. (A
        // single region larger than the whole capacity is still
        // admitted after a flush — like Dynamo, the cache always holds
        // at least the newest region — so check against the max of the
        // capacity and the largest single region.)
        let largest = sim
            .cache()
            .regions()
            .iter()
            .map(|r| r.size_estimate(cfg.stub_bytes))
            .max()
            .unwrap_or(0);
        prop_assert!(
            sim.cache().size_estimate(cfg.stub_bytes) <= capacity.max(largest),
            "cache {} over capacity {capacity}",
            sim.cache().size_estimate(cfg.stub_bytes)
        );
    }
}
